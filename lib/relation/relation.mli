(** Relations: the Jedd data type (§2.1) and all its operations (§2.2),
    backed by BDDs.

    A relation is an immutable set of tuples over a {!Schema.t}.  Values
    are reference-counted into the BDD manager and released by an OCaml
    finaliser — the same "finaliser as safety net" design as the paper's
    relation containers (§4.2); use {!release} for eager frees, which is
    what the Jedd interpreter's liveness analysis calls.

    Operation names follow the paper:
    union/inter/diff are [|], [&], [-]; {!project_away} is [(a=>)];
    {!rename} is [(a=>b)]; {!copy} is [(a=>b c)]; {!join} is
    [x{..} >< y{..}]; {!compose} is [x{..} <> y{..}].

    When two operands disagree only on physical-domain layout, the
    operation inserts the necessary [replace] automatically (and reports
    it to the profiler) — in language mode the jeddc translator has
    already made every replace explicit, so the interpreter never
    triggers this path except where the translator planned it. *)

type t

exception Type_error of string
(** Raised by the dynamic checks mirroring the paper's type rules
    (Figure 6) when used through the embedded API without the static
    checker. *)

val universe : t -> Universe.t
val schema : t -> Schema.t
val root : t -> Backend.node
(** The underlying BDD, in whichever backend the relation's universe
    runs on (for profilers, benchmarks, and tests). *)

(** {2 Construction} *)

val empty : Universe.t -> Schema.t -> t
(** The constant [0B] at a concrete schema. *)

val full : Universe.t -> Schema.t -> t
(** The constant [1B]: every tuple of the schema's domains.  Encodes the
    bound [value < Domain.size] per attribute, so non-power-of-two
    domains count correctly. *)

val of_tuples : Universe.t -> Schema.t -> int list list -> t
(** Build a relation from explicit tuples (objects listed in schema
    order) — the [new { o=>attr, ... }] literal, repeated. *)

val tuple : Universe.t -> Schema.t -> int list -> t

val of_root : Universe.t -> Schema.t -> Backend.node -> t
(** Wrap an existing backend root (taking a fresh reference on it) —
    the import half of the serialization layer.  The root's support
    must lie within the schema's levels; no check is performed here. *)

(** {2 Set operations and comparison (§2.2.1)} *)

val union : ?label:string -> t -> t -> t
val inter : ?label:string -> t -> t -> t
val diff : ?label:string -> t -> t -> t

val equal : t -> t -> bool
(** Constant-time on BDDs once layouts agree (the paper's [==]). *)

val is_empty : t -> bool
val size : t -> int
(** Number of tuples (the paper's [size()]). *)

(** {2 Projection and attribute operations (§2.2.2)} *)

val project_away : ?label:string -> t -> Attribute.t list -> t
(** [(a=>) x]: existentially quantify the attributes out. *)

val rename : ?label:string -> t -> (Attribute.t * Attribute.t) list -> t
(** [(a=>b) x]: each [b] takes over [a]'s physical domain; no BDD work. *)

val copy :
  ?label:string ->
  ?phys:Physdom.t ->
  t ->
  Attribute.t ->
  as_:Attribute.t ->
  t
(** [copy x a ~as_:c]: add attribute [c] holding the same object as [a]
    in every tuple.  [c] lives in [?phys] if given (must not collide
    with the schema), otherwise in a scratch physical domain.  The
    paper's [(a=>b c) x] is [rename (copy x a ~as_:c) [(a, b)]]. *)

(** {2 Join and composition (§2.2.3)} *)

val join :
  ?label:string -> t -> Attribute.t list -> t -> Attribute.t list -> t
(** [join x as_ y bs]: [x{as_} >< y{bs}].  Keeps the compared attributes
    (from the left), plus all non-compared attributes of both sides. *)

val compose :
  ?label:string -> t -> Attribute.t list -> t -> Attribute.t list -> t
(** [compose x as_ y bs]: [x{as_} <> y{bs}].  Projects the compared
    attributes away, using the BDD relational product in one pass. *)

val select : ?label:string -> t -> (Attribute.t * int) list -> t
(** Restrict to tuples with the given objects in the given attributes.
    The paper has no selection operation — "construct a relation
    containing the desired objects and join it" (§2.2.4); this is that
    idiom packaged. *)

(** {2 Physical-domain control (§3.2.2)} *)

val replace : ?label:string -> t -> (Attribute.t * Physdom.t) list -> t
(** Move attributes to new physical domains (BuDDy [bdd_replace]). *)

val coerce : ?label:string -> t -> Schema.t -> t
(** Replace as needed so the relation has exactly the given layout.
    The schemas must have the same attributes. *)

(** {2 Extraction back to the host language (§2.3)} *)

val iter_tuples : t -> (int array -> unit) -> unit
(** Objects in schema order; the array is reused between calls. *)

val tuples : t -> int list list
(** All tuples, sorted, as lists of objects in schema order. *)

val iter_objects : t -> (int -> unit) -> unit
(** Single-attribute relations only: iterate the objects themselves
    (the paper's first iterator). *)

val reorder : t -> unit
(** Run one variable-reorder pass on the relation's universe
    ({!Universe.reorder} with trigger ["relation"]) — e.g. between
    fixpoint phases.  Safe at any point between operations: relations
    hold stable BDD handles and all layout data is derived from the
    current order at call time. *)

val pp : Format.formatter -> t -> unit
(** Figure 3-style table with attribute headers and object names. *)

val to_string : t -> string

(** {2 Weighted relations (mtbdd backend)}

    Per-tuple non-negative integer weights, carried as MTBDD terminal
    values.  A weighted relation is an ordinary {!t} whose universe runs
    the [`Mtbdd] backend: the boolean operations above act on it with
    0/1-embedding semantics ({!inter} preserves weights, {!union} takes
    the pointwise max, {!size}/{!tuples} see the support), while the
    functions here read and transform the weights themselves.  All of
    them raise {!Type_error} on a boolean-backend universe.  Weights
    saturate at [Backend.wvalue_cap]. *)

val of_weighted_tuples : Universe.t -> Schema.t -> (int list * int) list -> t
(** Build a weighted relation from (tuple, weight) pairs.  Duplicate
    tuples sum their weights; weight 0 is the same as absence.
    [Type_error] on a negative weight. *)

val weight_of_tuples : t -> (int list * int) list
(** All support tuples with their weights, sorted. *)

val iter_weighted_tuples : t -> (int array -> int -> unit) -> unit
(** Objects in schema order plus the tuple's weight; the array is
    reused between calls. *)

val fold_weighted : t -> init:'a -> f:('a -> int list -> int -> 'a) -> 'a

val weight_of : t -> int list -> int
(** Weight of one tuple (0 if absent). *)

val total_weight : t -> int
(** Sum of all tuple weights. *)

val project_sum : ?label:string -> t -> Attribute.t list -> t
(** Like {!project_away}, but summing weights instead of erasing them:
    each surviving tuple's weight is the sum over the projected-away
    attributes — the counting projection. *)

val scale : ?label:string -> t -> int -> t
(** Multiply every weight by a constant factor. *)

val threshold : ?label:string -> t -> int -> t
(** Keep tuples of weight [>= k], with weight 1 — the abstraction back
    to a boolean relation (within the mtbdd universe). *)

(** {2 Memory management (§4.2)} *)

val dup : t -> t
(** A fresh handle on the same relation (same schema, same BDD, its own
    reference count).  Storing into a variable stores a [dup], so that
    releasing one handle can never invalidate another — the pass-by-value
    semantics of Jedd relations (§2.1). *)

val release : t -> unit
(** Eagerly drop this value's reference count.  Using the relation
    afterwards is a programming error.  Without [release], the
    finaliser drops the count when the OCaml GC proves the value dead. *)

val live_root_count : Universe.t -> int
(** Diagnostic: number of relation roots currently holding references. *)
