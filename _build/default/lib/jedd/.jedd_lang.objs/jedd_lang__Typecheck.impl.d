lib/jedd/typecheck.ml: Ast Format Hashtbl List Option String Tast
