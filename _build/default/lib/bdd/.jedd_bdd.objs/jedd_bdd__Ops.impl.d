lib/bdd/ops.ml: Hashtbl List Manager
