lib/jedd/constraints.mli: Ast Hashtbl Tast
