(** Core ROBDD operations: negation, binary boolean connectives, and
    if-then-else, all memoised through the manager's operation cache.

    Every function takes the manager first.  Results are returned
    unreferenced; callers that want a result to survive a garbage
    collection must {!Manager.addref} it. *)

type man = Manager.t
type node = Manager.node

val bnot : man -> node -> node
(** Boolean negation. *)

val band : man -> node -> node -> node
val bor : man -> node -> node -> node
val bxor : man -> node -> node -> node
val bnand : man -> node -> node -> node
val bnor : man -> node -> node -> node
val bimp : man -> node -> node -> node
(** Implication [a => b]. *)

val bbiimp : man -> node -> node -> node
(** Bi-implication [a <=> b]. *)

val bdiff : man -> node -> node -> node
(** Set difference [a land (lnot b)]. *)

val ite : man -> node -> node -> node -> node
(** [ite m f g h] is if-then-else: [f&g | !f&h]. *)

val cube : man -> (int * bool) list -> node
(** [cube m assignment] builds the conjunction of literals given as
    [(level, polarity)] pairs.  Levels may be given in any order. *)

val restrict : man -> node -> (int * bool) list -> node
(** Cofactor with respect to a partial assignment of variables. *)

(** {2 Cache tags}

    Exposed so {!Par}'s parallel recursions memoise under the same tags:
    a sub-result computed by one side of a fork is then visible to the
    sequential leaves of the other (after a cache merge or within one
    domain), and per-tag statistics stay attributed to the logical
    operation regardless of which engine ran it. *)

val tag_not : int
val tag_and : int
val tag_or : int
val tag_xor : int
val tag_diff : int
val tag_ite : int
