(* Budget-bounded priority queue of fixed-arity int records, the engine
   of every time-forward-processing sweep.  Records are compared
   lexicographically over all their fields, so putting the sort key
   (level, then operand uids) in the leading fields gives the per-level
   grouping the sweeps rely on.

   The queue is a strided binary min-heap that grows geometrically up to
   the store's byte budget; past the budget, the heap contents are
   sorted and written to disk as a run, and popping merges the heap with
   the heads of all live runs.  This is sound for the sweeps because
   every run is individually sorted and, during the phase that pops,
   pushed keys are never smaller than the key last popped. *)

type run = {
  path : string;
  mutable ic : in_channel option;
  mutable buf : int array; (* current strided chunk *)
  mutable pos : int; (* int offset of the current record *)
}

type t = {
  st : Store.t;
  arity : int;
  cap : int; (* record budget before spilling *)
  mutable heap : int array;
  mutable n : int; (* records in the heap *)
  mutable runs : run list;
  mutable total : int;
}

let chunk_records = 4096

let create st ~arity =
  let cap = max 64 (Store.pq_budget_bytes st / (8 * arity)) in
  {
    st;
    arity;
    cap;
    heap = Array.make (min cap 1024 * arity) 0;
    n = 0;
    runs = [];
    total = 0;
  }

let size q = q.total
let is_empty q = q.total = 0

(* record comparison at strided offsets *)
let cmp_at q a i j =
  let rec go k =
    if k = q.arity then 0
    else
      let c = compare a.(i + k) a.(j + k) in
      if c <> 0 then c else go (k + 1)
  in
  go 0

let swap_at q a i j =
  for k = 0 to q.arity - 1 do
    let t = a.(i + k) in
    a.(i + k) <- a.(j + k);
    a.(j + k) <- t
  done

let sift_up q i0 =
  let a = q.heap in
  let i = ref i0 in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    if cmp_at q a (!i * q.arity) (p * q.arity) < 0 then (
      swap_at q a (!i * q.arity) (p * q.arity);
      i := p;
      true)
    else false
  do
    ()
  done

let sift_down q =
  let a = q.heap in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < q.n && cmp_at q a (l * q.arity) (!s * q.arity) < 0 then s := l;
    if r < q.n && cmp_at q a (r * q.arity) (!s * q.arity) < 0 then s := r;
    if !s <> !i then (
      swap_at q a (!i * q.arity) (!s * q.arity);
      i := !s)
    else continue := false
  done

(* -- spilled runs ------------------------------------------------------- *)

let spill q =
  (* sort the heap's records and write them out as one sorted run *)
  let recs =
    Array.init q.n (fun i -> Array.sub q.heap (i * q.arity) q.arity)
  in
  Array.sort compare recs;
  let path = Store.fresh_path q.st "run" in
  let bytes =
    Store.timed q.st (fun () ->
        let oc = open_out_bin path in
        let i = ref 0 in
        while !i < q.n do
          let len = min chunk_records (q.n - !i) in
          let chunk = Array.make (len * q.arity) 0 in
          for j = 0 to len - 1 do
            Array.blit recs.(!i + j) 0 chunk (j * q.arity) q.arity
          done;
          Marshal.to_channel oc chunk [ Marshal.No_sharing ];
          i := !i + len
        done;
        let b = pos_out oc in
        close_out oc;
        b)
  in
  Store.note_spill q.st ~bytes;
  q.runs <- { path; ic = None; buf = [||]; pos = 0 } :: q.runs;
  q.n <- 0

let run_refill q r =
  match r.ic with
  | None ->
    let ic = Store.timed q.st (fun () -> open_in_bin r.path) in
    r.ic <- Some ic;
    r.buf <- Store.timed q.st (fun () -> Marshal.from_channel ic);
    r.pos <- 0
  | Some ic -> (
    match Store.timed q.st (fun () -> Marshal.from_channel ic) with
    | buf ->
      r.buf <- buf;
      r.pos <- 0
    | exception End_of_file ->
      close_in ic;
      (try Sys.remove r.path with Sys_error _ -> ());
      r.ic <- Some ic;
      r.buf <- [||];
      r.pos <- 0)

(* current record of a run, or [None] if exhausted *)
let run_head q r =
  if r.pos < Array.length r.buf then Some r.pos
  else if r.ic <> None && Array.length r.buf = 0 then None
  else (
    run_refill q r;
    if r.pos < Array.length r.buf then Some r.pos else None)

let push q (rc : int array) =
  if q.n = q.cap then spill q
  else if (q.n + 1) * q.arity > Array.length q.heap then begin
    let heap' =
      Array.make (min q.cap (2 * (Array.length q.heap / q.arity)) * q.arity) 0
    in
    Array.blit q.heap 0 heap' 0 (q.n * q.arity);
    q.heap <- heap'
  end;
  Array.blit rc 0 q.heap (q.n * q.arity) q.arity;
  q.n <- q.n + 1;
  q.total <- q.total + 1;
  Store.note_pq_bytes q.st (q.n * q.arity * 8);
  sift_up q (q.n - 1)

(* pick the smallest among the heap root and the live run heads *)
type source = Heap | Run of run

let best q =
  let key_of src =
    match src with
    | Heap -> if q.n > 0 then Some (Array.sub q.heap 0 q.arity) else None
    | Run r -> (
      match run_head q r with
      | None -> None
      | Some p -> Some (Array.sub r.buf p q.arity))
  in
  let pick acc src =
    match key_of src with
    | None -> acc
    | Some k -> (
      match acc with
      | None -> Some (src, k)
      | Some (_, kb) -> if compare k kb < 0 then Some (src, k) else acc)
  in
  let acc = pick None Heap in
  List.fold_left (fun acc r -> pick acc (Run r)) acc q.runs

let peek q (dst : int array) =
  match best q with
  | None -> false
  | Some (_, k) ->
    Array.blit k 0 dst 0 q.arity;
    true

let pop q (dst : int array) =
  match best q with
  | None -> false
  | Some (src, k) ->
    Array.blit k 0 dst 0 q.arity;
    (match src with
    | Heap ->
      q.n <- q.n - 1;
      if q.n > 0 then begin
        Array.blit q.heap (q.n * q.arity) q.heap 0 q.arity;
        sift_down q
      end
    | Run r -> r.pos <- r.pos + q.arity);
    q.total <- q.total - 1;
    true

let destroy q =
  List.iter
    (fun r ->
      (match r.ic with Some ic -> (try close_in ic with _ -> ()) | None -> ());
      try Sys.remove r.path with Sys_error _ -> ())
    q.runs;
  q.runs <- [];
  q.n <- 0;
  q.total <- 0
