(** Deterministic synthetic whole-program generator.

    The paper evaluates on javac, compress, sablecc and jedit via Soot;
    those inputs are not redistributable, so this module generates
    programs with the same structural knobs (hierarchy shape, override
    density, statement mix) at per-benchmark scales chosen to preserve
    the paper's relative benchmark sizes.  Same profile, same program —
    generation is seeded. *)

type profile = {
  name : string;
  classes : int;
  sigs_per_class : int;
  methods_scale : int;
  vars_per_method : int;
  heap_per_method : int;
  fields : int;
  assign_factor : int;
  field_ops_per_method : int;
  calls_per_method : int;
  seed : int;
}

val profiles : profile list
(** The five Table 2 benchmarks: javac, compress, javac-13, sablecc,
    jedit (ordered as in the paper). *)

val profile_named : string -> profile
(** Raises [Invalid_argument] for unknown names. *)

val tiny : profile
(** A few-classes profile for fast tests. *)

val generate : profile -> Program.t
