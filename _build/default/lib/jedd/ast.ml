type pos = { file : string; line : int; col : int }

let pp_pos ppf { file; line; col } = Format.fprintf ppf "%s:%d,%d" file line col

type attr_phys = { attr_name : string; phys_name : string option }
type rel_type = { elems : attr_phys list; type_pos : pos }

type replacement =
  | Project_away of string
  | Rename_to of string * string
  | Copy_to of string * string * string

type join_kind = Join | Compose
type set_op = Union | Inter | Diff

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Var of string
  | Empty
  | Full
  | Literal of (obj_expr * attr_phys) list
  | Binop of set_op * expr * expr
  | Replace of replacement list * expr
  | JoinExpr of join_kind * expr * string list * expr * string list
  | Call of string * arg list

and obj_expr = Obj_var of string | Obj_int of int
and arg = Arg_rel of expr | Arg_obj of obj_expr

type cond = { cdesc : cond_desc; cpos : pos }

and cond_desc =
  | Cmp_eq of expr * expr
  | Cmp_ne of expr * expr
  | Not of cond
  | And of cond * cond
  | Or of cond * cond
  | Bool_lit of bool

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of rel_type * string * expr option
  | Assign of string * expr
  | Op_assign of set_op * string * expr
  | If of cond * stmt * stmt option
  | While of cond * stmt
  | Do_while of stmt * cond
  | Block of stmt list
  | Return of expr option
  | Expr_stmt of expr
  | Print of expr

type param = Param_rel of rel_type * string | Param_obj of string * string

type meth = {
  meth_name : string;
  meth_params : param list;
  meth_return : rel_type option;
  meth_body : stmt list;
  meth_pos : pos;
}

type field = {
  field_type : rel_type;
  field_name : string;
  field_init : expr option;
  field_pos : pos;
}

type cls = {
  cls_name : string;
  fields : field list;
  methods : meth list;
  cls_pos : pos;
}

type decl =
  | Domain_decl of string * int * pos
  | Attribute_decl of string * string * pos
  | Physdom_decl of string * int option * pos
  | Class_decl of cls

type program = decl list
