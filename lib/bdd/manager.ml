type node = int

let zero = 0
let one = 1
let terminal_level = max_int lsr 1

(* -- Operation-cache tag registry --------------------------------------- *)

(* Every algorithm module that memoises through the shared operation
   cache registers a tag at module-initialisation time.  The registry is
   global (tags are plain ints baked into cache keys, identical for every
   manager) and gives each tag a stable human-readable name so per-tag
   statistics can be reported by the profiler and the benchmark JSON. *)

let max_tags = 64
let tag_names = Array.make max_tags ""
let registered_tags = ref 0

let register_tag name =
  let t = !registered_tags in
  if t >= max_tags then invalid_arg "Manager.register_tag: tag space exhausted";
  incr registered_tags;
  tag_names.(t) <- name;
  t

let tag_name t =
  if t < 0 || t >= !registered_tags then invalid_arg "Manager.tag_name"
  else tag_names.(t)

type cache_stat = {
  tag : int;
  name : string;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
}

(* Growable int vector used by the per-level node index a reorder
   session maintains. *)
type vec = { mutable data : int array; mutable len : int }

let vec_make () = { data = Array.make 16 0; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let d = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 d 0 v.len;
    v.data <- d
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(* A free node has [lvl] = -1 and its [hnext] field threads the free
   list.  Allocated nodes thread [hnext] through their unique-table
   bucket. *)
type t = {
  uid : int;
  mutable nvars : int;
  mutable capacity : int;
  mutable lvl : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable refc : int array;
  mutable hnext : int array;
  mutable buckets : int array;
  mutable bucket_mask : int;
  mutable free_head : int;
  mutable free_count : int;
  mutable allocated : int; (* nodes ever handed out and not swept *)
  mutable peak : int;
  mutable gcs : int;
  mutable gc_millis : float;
  mutable grows : int;
  mutable grow_millis : float;
  mutable node_limit : int; (* capacity ceiling; 0 = unlimited *)
  (* N-way set-associative operation cache.  Each entry is
     [entry_ints] consecutive ints: tag, a, b, c, result, generation.
     A set is [ways] consecutive entries; lookups scan the set and
     promote hits toward the front, stores insert at the front and
     push the rest down (evicting the last way). *)
  cache : int array;
  ways : int;
  set_mask : int;
  mutable cache_gen : int;
  hit_ct : int array; (* per tag *)
  miss_ct : int array;
  store_ct : int array;
  evict_ct : int array;
  mutable marked : Bytes.t;
  mutable visited : Bytes.t;
  (* Dynamic variable order.  A variable keeps its id (allocation order)
     for its whole life; [var2level]/[level2var] map between ids and the
     current physical levels.  Both are the identity until the first
     reorder. *)
  mutable var2level : int array;
  mutable level2var : int array;
  mutable swaps : int; (* adjacent level exchanges performed *)
  mutable order_gen : int; (* bumped on every swap; stamps order-dependent memos *)
  mutable reorders : int; (* reorder passes recorded via [record_reorder] *)
  mutable reorder_millis : float;
  mutable reorder_aborts : int; (* max-growth aborts reported by the engine *)
  mutable reorder_hook : (unit -> unit) option;
  mutable reorder_threshold : int; (* 0 disables the auto trigger *)
  mutable in_reorder : bool;
  (* Per-level index of allocated nodes, alive only inside a reorder
     session ([reorder_begin] .. [reorder_end]); rebuilt by [gc]. *)
  mutable level_index : vec array option;
}

let free_mark = -1
let entry_ints = 6

let hash3 a b c mask =
  let h = (a * 12582917) lxor (b * 4256249) lxor (c * 0x9e3779b9) in
  (h lxor (h lsr 16)) land mask

let next_uid = ref 0

exception Out_of_nodes

let create ?(node_capacity = 1 lsl 15) ?(cache_bits = 14) ?(cache_ways = 4)
    ?(node_limit = 0) () =
  if cache_ways < 1 then invalid_arg "Manager.create: cache_ways must be >= 1";
  incr next_uid;
  let uid = !next_uid in
  let rec pow2_below n acc = if acc * 2 > n then acc else pow2_below n (acc * 2) in
  let capacity = max 1024 node_capacity in
  (* A node budget is a true ceiling: the initial table must fit under it
     too (rounded down to a power of two for mask indexing). *)
  let capacity =
    if node_limit > 0 && capacity > node_limit then
      pow2_below (max 1024 node_limit) 1024
    else capacity
  in
  let entries = max cache_ways (1 lsl cache_bits) in
  let sets = entries / cache_ways in
  (* round the set count down to a power of two for mask indexing *)
  let sets = pow2_below sets 1 in
  let m =
    {
      uid;
      nvars = 0;
      capacity;
      lvl = Array.make capacity free_mark;
      lo = Array.make capacity 0;
      hi = Array.make capacity 0;
      refc = Array.make capacity 0;
      hnext = Array.make capacity (-1);
      buckets = Array.make capacity (-1);
      bucket_mask = capacity - 1;
      free_head = -1;
      free_count = 0;
      allocated = 2;
      peak = 2;
      gcs = 0;
      gc_millis = 0.0;
      grows = 0;
      grow_millis = 0.0;
      node_limit;
      cache = Array.make (sets * cache_ways * entry_ints) (-1);
      ways = cache_ways;
      set_mask = sets - 1;
      cache_gen = 1; (* entries start at gen 0: all invalid *)
      hit_ct = Array.make max_tags 0;
      miss_ct = Array.make max_tags 0;
      store_ct = Array.make max_tags 0;
      evict_ct = Array.make max_tags 0;
      marked = Bytes.make capacity '\000';
      visited = Bytes.make capacity '\000';
      var2level = [||];
      level2var = [||];
      swaps = 0;
      order_gen = 0;
      reorders = 0;
      reorder_millis = 0.0;
      reorder_aborts = 0;
      reorder_hook = None;
      reorder_threshold = 0;
      in_reorder = false;
      level_index = None;
    }
  in
  (* Terminals: permanently allocated, never hashed, never swept. *)
  m.lvl.(0) <- terminal_level;
  m.lvl.(1) <- terminal_level;
  m.refc.(0) <- 1;
  m.refc.(1) <- 1;
  (* Thread the rest into the free list. *)
  for i = capacity - 1 downto 2 do
    m.hnext.(i) <- m.free_head;
    m.lvl.(i) <- free_mark;
    m.free_head <- i;
    m.free_count <- m.free_count + 1
  done;
  m

let ensure_order_capacity m n =
  if Array.length m.var2level < n then begin
    let cap = max 16 (max n (2 * Array.length m.var2level)) in
    let grow a =
      let a' = Array.make cap (-1) in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    m.var2level <- grow m.var2level;
    m.level2var <- grow m.level2var
  end

let new_var m =
  let v = m.nvars in
  m.nvars <- v + 1;
  (* The fresh variable enters at the bottom of the current order; since
     existing variables occupy levels [0, v), the new level is [v]. *)
  ensure_order_capacity m m.nvars;
  m.var2level.(v) <- v;
  m.level2var.(v) <- v;
  v

let level_of_var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Manager.level_of_var";
  m.var2level.(v)

let var_at_level m l =
  if l < 0 || l >= m.nvars then invalid_arg "Manager.var_at_level";
  m.level2var.(l)

let uid m = m.uid
let num_vars m = m.nvars
let level m n = m.lvl.(n)
let low m n = m.lo.(n)
let high m n = m.hi.(n)
let is_terminal n = n < 2
let live_nodes m = m.allocated
let peak_nodes m = m.peak
let gc_count m = m.gcs
let gc_millis m = m.gc_millis
let grow_count m = m.grows
let grow_millis m = m.grow_millis

let set_node_limit m limit =
  m.node_limit <- (match limit with Some n when n > 0 -> n | _ -> 0)

let node_limit m = if m.node_limit > 0 then Some m.node_limit else None
let refcount m n = m.refc.(n)
let order_gen m = m.order_gen
let swap_count m = m.swaps
let reorder_count m = m.reorders
let reorder_millis m = m.reorder_millis
let reorder_aborts m = m.reorder_aborts

let record_reorder m ~millis ~aborts =
  m.reorders <- m.reorders + 1;
  m.reorder_millis <- m.reorder_millis +. millis;
  m.reorder_aborts <- m.reorder_aborts + aborts

let set_reorder_hook m hook = m.reorder_hook <- hook
let set_reorder_threshold m n = m.reorder_threshold <- max 0 n
let reorder_threshold m = m.reorder_threshold
let in_reorder m = m.in_reorder

(* Invalidation is a generation bump: O(1) instead of an O(cache) wipe.
   Entries stamped with an older generation fail the lookup check and are
   recycled by the next store to their slot. *)
let clear_caches m = m.cache_gen <- m.cache_gen + 1

let cache_lookup m tag a b c =
  let set = hash3 (a lxor (tag * 0x85ebca6b)) b c m.set_mask in
  let base = set * m.ways * entry_ints in
  let t = m.cache in
  let gen = m.cache_gen in
  let ways = m.ways in
  let rec scan i =
    if i >= ways then begin
      m.miss_ct.(tag) <- m.miss_ct.(tag) + 1;
      -1
    end
    else
      let idx = base + (i * entry_ints) in
      if
        t.(idx + 5) = gen
        && t.(idx) = tag
        && t.(idx + 1) = a
        && t.(idx + 2) = b
        && t.(idx + 3) = c
      then begin
        let r = t.(idx + 4) in
        (* promote: swap with the front entry so repeated winners stay
           resident (cheap approximation of LRU) *)
        if i > 0 then begin
          for k = 0 to entry_ints - 1 do
            let tmp = t.(base + k) in
            t.(base + k) <- t.(idx + k);
            t.(idx + k) <- tmp
          done
        end;
        m.hit_ct.(tag) <- m.hit_ct.(tag) + 1;
        r
      end
      else scan (i + 1)
  in
  scan 0

let cache_store m tag a b c result =
  let set = hash3 (a lxor (tag * 0x85ebca6b)) b c m.set_mask in
  let base = set * m.ways * entry_ints in
  let t = m.cache in
  let last = base + ((m.ways - 1) * entry_ints) in
  (* the last way is the victim; count it if it held a live entry *)
  let victim_tag = t.(last) in
  if t.(last + 5) = m.cache_gen && victim_tag >= 0 && victim_tag < max_tags then
    m.evict_ct.(victim_tag) <- m.evict_ct.(victim_tag) + 1;
  if m.ways > 1 then
    Array.blit t base t (base + entry_ints) ((m.ways - 1) * entry_ints);
  t.(base) <- tag;
  t.(base + 1) <- a;
  t.(base + 2) <- b;
  t.(base + 3) <- c;
  t.(base + 4) <- result;
  t.(base + 5) <- m.cache_gen;
  m.store_ct.(tag) <- m.store_ct.(tag) + 1

let cache_stats m =
  let acc = ref [] in
  for tag = !registered_tags - 1 downto 0 do
    acc :=
      {
        tag;
        name = tag_names.(tag);
        hits = m.hit_ct.(tag);
        misses = m.miss_ct.(tag);
        stores = m.store_ct.(tag);
        evictions = m.evict_ct.(tag);
      }
      :: !acc
  done;
  !acc

let cache_totals m =
  let h = ref 0 and mi = ref 0 and e = ref 0 in
  for tag = 0 to !registered_tags - 1 do
    h := !h + m.hit_ct.(tag);
    mi := !mi + m.miss_ct.(tag);
    e := !e + m.evict_ct.(tag)
  done;
  (!h, !mi, !e)

let cache_config m = ((m.set_mask + 1) * m.ways, m.ways)

(* -- Growth ------------------------------------------------------------ *)

let grow_array a capacity fill =
  let a' = Array.make capacity fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let rebuild_buckets m =
  Array.fill m.buckets 0 (Array.length m.buckets) (-1);
  (* Free-list entries are re-threaded too, so rebuild it as we go. *)
  m.free_head <- -1;
  m.free_count <- 0;
  for n = m.capacity - 1 downto 2 do
    if m.lvl.(n) = free_mark then begin
      m.hnext.(n) <- m.free_head;
      m.free_head <- n;
      m.free_count <- m.free_count + 1
    end
    else begin
      let b = hash3 m.lvl.(n) m.lo.(n) m.hi.(n) m.bucket_mask in
      m.hnext.(n) <- m.buckets.(b);
      m.buckets.(b) <- n
    end
  done

(* Growing preserves node handles, so cached results stay valid: the
   operation cache is deliberately left untouched here. *)
let grow m =
  let t0 = Sys.time () in
  let capacity = m.capacity * 2 in
  m.lvl <- grow_array m.lvl capacity free_mark;
  m.lo <- grow_array m.lo capacity 0;
  m.hi <- grow_array m.hi capacity 0;
  m.refc <- grow_array m.refc capacity 0;
  m.hnext <- grow_array m.hnext capacity (-1);
  m.buckets <- Array.make capacity (-1);
  m.bucket_mask <- capacity - 1;
  let marked = Bytes.make capacity '\000' in
  Bytes.blit m.marked 0 marked 0 (Bytes.length m.marked);
  m.marked <- marked;
  let visited = Bytes.make capacity '\000' in
  Bytes.blit m.visited 0 visited 0 (Bytes.length m.visited);
  m.visited <- visited;
  m.capacity <- capacity;
  rebuild_buckets m;
  m.grows <- m.grows + 1;
  m.grow_millis <- m.grow_millis +. ((Sys.time () -. t0) *. 1000.0)

(* -- Reorder sessions --------------------------------------------------- *)

let build_level_index m =
  let idx = Array.init (max 1 m.nvars) (fun _ -> vec_make ()) in
  for n = 2 to m.capacity - 1 do
    let l = m.lvl.(n) in
    if l <> free_mark && l < terminal_level then vec_push idx.(l) n
  done;
  idx

(* Opening a session materialises the per-level node index [swap_adjacent]
   works from; it stays valid across swaps and table growth (handles are
   stable) and is rebuilt by [gc] (which recycles handles). *)
let reorder_begin m =
  if m.level_index = None then m.level_index <- Some (build_level_index m)

let reorder_end m = m.level_index <- None

(* -- Garbage collection ------------------------------------------------ *)

let mark_from m root =
  if root >= 2 && Bytes.get m.marked root = '\000' then begin
    let stack = ref [ root ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
        stack := rest;
        if n >= 2 && Bytes.get m.marked n = '\000' then begin
          Bytes.set m.marked n '\001';
          stack := m.lo.(n) :: m.hi.(n) :: !stack
        end
    done
  end

let gc m =
  let t0 = Sys.time () in
  m.gcs <- m.gcs + 1;
  (* Collection frees (and later recycles) node handles, so every cached
     result is suspect: retire the whole generation. *)
  clear_caches m;
  Bytes.fill m.marked 0 (Bytes.length m.marked) '\000';
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark && m.refc.(n) > 0 then mark_from m n
  done;
  (* Sweep: unmarked allocated nodes become free. *)
  m.allocated <- 2;
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark then
      if Bytes.get m.marked n = '\000' then m.lvl.(n) <- free_mark
      else m.allocated <- m.allocated + 1
  done;
  rebuild_buckets m;
  (* Collection recycles handles, so an open reorder session's per-level
     index must be rebuilt from the survivors. *)
  if m.level_index <> None then m.level_index <- Some (build_level_index m);
  m.gc_millis <- m.gc_millis +. ((Sys.time () -. t0) *. 1000.0)

let checkpoint m =
  (* Auto-reorder trigger: safe points are the only places a reorder may
     run (no recursive operation is in flight), so the hook fires here
     when the live-node population has crossed the configured threshold
     since the last reorder.  [in_reorder] guards against reentry from
     the checkpoints the reorder engine itself performs. *)
  (match m.reorder_hook with
  | Some hook
    when m.reorder_threshold > 0
         && (not m.in_reorder)
         && m.allocated >= m.reorder_threshold ->
    m.in_reorder <- true;
    Fun.protect ~finally:(fun () -> m.in_reorder <- false) hook
  | _ -> ());
  if m.free_count * 4 < m.capacity then begin
    gc m;
    (* If collection freed too little, enlarge so the mutator does not
       immediately bump into the wall again — unless a node budget says
       the next doubling is off-limits; then run on what collection
       recovered and let [alloc] raise if the wall is real. *)
    if
      m.free_count * 4 < m.capacity
      && not (m.node_limit > 0 && m.capacity * 2 > m.node_limit)
    then grow m
  end

(* -- Node creation ------------------------------------------------------ *)

(* Growth against the node budget.  When the free list is empty and
   doubling would overshoot the limit, reclaim whatever garbage is left
   and abandon the current operation: a collection here recycles node
   handles, so in-flight unreferenced intermediates must not be resumed.
   The manager itself stays consistent (caches were retired by [gc]) —
   the handler can release roots and retry, e.g. on the out-of-core
   backend. *)
let grow_limited m =
  if m.node_limit > 0 && m.capacity * 2 > m.node_limit then begin
    gc m;
    raise Out_of_nodes
  end
  else grow m

let alloc m =
  if m.free_head < 0 then grow_limited m;
  let n = m.free_head in
  m.free_head <- m.hnext.(n);
  m.free_count <- m.free_count - 1;
  m.allocated <- m.allocated + 1;
  if m.allocated > m.peak then m.peak <- m.allocated;
  n

let mk m lvl lo hi =
  if lo = hi then lo
  else begin
    assert (lvl >= 0 && lvl < m.lvl.(lo) && lvl < m.lvl.(hi));
    let b = hash3 lvl lo hi m.bucket_mask in
    let rec find n =
      if n < 0 then begin
        let n = alloc m in
        m.lvl.(n) <- lvl;
        m.lo.(n) <- lo;
        m.hi.(n) <- hi;
        m.refc.(n) <- 0;
        (* Recompute the bucket: [alloc] may have grown the table. *)
        let b = hash3 lvl lo hi m.bucket_mask in
        m.hnext.(n) <- m.buckets.(b);
        m.buckets.(b) <- n;
        n
      end
      else if m.lvl.(n) = lvl && m.lo.(n) = lo && m.hi.(n) = hi then n
      else find m.hnext.(n)
    in
    find m.buckets.(b)
  end

let var m lvl = mk m lvl zero one
let nvar m lvl = mk m lvl one zero

(* -- Adjacent level exchange -------------------------------------------- *)

let unlink m n =
  let b = hash3 m.lvl.(n) m.lo.(n) m.hi.(n) m.bucket_mask in
  if m.buckets.(b) = n then m.buckets.(b) <- m.hnext.(n)
  else begin
    let rec go p =
      if m.hnext.(p) = n then m.hnext.(p) <- m.hnext.(n)
      else go m.hnext.(p)
    in
    go m.buckets.(b)
  end

let relink m n =
  let b = hash3 m.lvl.(n) m.lo.(n) m.hi.(n) m.bucket_mask in
  m.hnext.(n) <- m.buckets.(b);
  m.buckets.(b) <- n

(* [swap_adjacent m l] exchanges levels [l] and [l+1] of the order, in
   place over the unique table.  Every existing handle keeps the boolean
   function it denoted before the swap (over variable ids), so external
   references, refcounts and inter-manager memo tables stay valid; only
   level-dependent structural memos die, which the [order_gen] bump and
   cache invalidation take care of.

   Nodes at level [l] that do not depend on level [l+1], and all nodes at
   level [l+1], merely trade levels.  A level-[l] node with a child at
   level [l+1] is rewritten in place from its four grandcofactors; the
   two new children are made by [mk] at level [l+1].  Canonicity
   guarantees the rewritten node cannot collide with any relabeled node
   (a collision would equate two functions that were distinct before the
   swap). *)
let swap_adjacent m l =
  if l < 0 || l + 1 >= m.nvars then invalid_arg "Manager.swap_adjacent";
  let standalone = m.level_index = None in
  if standalone then reorder_begin m;
  let idx = match m.level_index with Some i -> i | None -> assert false in
  let upper = idx.(l) and lower = idx.(l + 1) in
  (* Pre-grow so [mk] cannot trigger a mid-surgery table growth: each
     rewritten node allocates at most two children. *)
  while m.free_count < (2 * upper.len) + 64 do
    grow m
  done;
  (* Partition the upper rank before any relabeling. *)
  let deps = vec_make () and indeps = vec_make () in
  for i = 0 to upper.len - 1 do
    let n = upper.data.(i) in
    if m.lvl.(m.lo.(n)) = l + 1 || m.lvl.(m.hi.(n)) = l + 1 then
      vec_push deps n
    else vec_push indeps n
  done;
  (* Unlink both ranks while their stored keys still match. *)
  for i = 0 to upper.len - 1 do
    unlink m upper.data.(i)
  done;
  for i = 0 to lower.len - 1 do
    unlink m lower.data.(i)
  done;
  (* Independent upper nodes and the whole lower rank just trade levels:
     under the swapped variable<->level maps they denote the same
     functions. *)
  for i = 0 to indeps.len - 1 do
    let n = indeps.data.(i) in
    m.lvl.(n) <- l + 1;
    relink m n
  done;
  for i = 0 to lower.len - 1 do
    let n = lower.data.(i) in
    m.lvl.(n) <- l;
    relink m n
  done;
  (* Rewrite each dependent node in place from its grandcofactors, so the
     handle keeps denoting the same function with the variables read in
     the new order.  Old lower-rank children now sit at level [l]; true
     children of the node can never be at [l] otherwise. *)
  for i = 0 to deps.len - 1 do
    let n = deps.data.(i) in
    let g = m.lo.(n) and h = m.hi.(n) in
    let g0, g1 =
      if (not (is_terminal g)) && m.lvl.(g) = l then (m.lo.(g), m.hi.(g))
      else (g, g)
    in
    let h0, h1 =
      if (not (is_terminal h)) && m.lvl.(h) = l then (m.lo.(h), m.hi.(h))
      else (h, h)
    in
    let c0 = mk m (l + 1) g0 h0 in
    let c1 = mk m (l + 1) g1 h1 in
    m.lo.(n) <- c0;
    m.hi.(n) <- c1;
    relink m n
  done;
  (* Rebuild the two touched ranks of the index: level [l] now holds the
     rewritten dependents plus the relabeled old lower rank; level [l+1]
     holds the relabeled independents plus whatever [mk] returned or
     created there (deduplicated through the scratch visited set). *)
  let new_upper = vec_make () in
  for i = 0 to deps.len - 1 do
    vec_push new_upper deps.data.(i)
  done;
  for i = 0 to lower.len - 1 do
    vec_push new_upper lower.data.(i)
  done;
  let new_lower = vec_make () in
  let add c =
    if
      (not (is_terminal c))
      && m.lvl.(c) = l + 1
      && Bytes.get m.visited c = '\000'
    then begin
      Bytes.set m.visited c '\001';
      vec_push new_lower c
    end
  in
  for i = 0 to indeps.len - 1 do
    add indeps.data.(i)
  done;
  for i = 0 to deps.len - 1 do
    add m.lo.(deps.data.(i));
    add m.hi.(deps.data.(i))
  done;
  for i = 0 to new_lower.len - 1 do
    Bytes.set m.visited new_lower.data.(i) '\000'
  done;
  idx.(l) <- new_upper;
  idx.(l + 1) <- new_lower;
  (* Swap the variable<->level maps and retire order-dependent memos. *)
  let va = m.level2var.(l) and vb = m.level2var.(l + 1) in
  m.level2var.(l) <- vb;
  m.level2var.(l + 1) <- va;
  m.var2level.(va) <- l + 1;
  m.var2level.(vb) <- l;
  m.swaps <- m.swaps + 1;
  m.order_gen <- m.order_gen + 1;
  clear_caches m;
  if standalone then reorder_end m

(* -- Invariant checker --------------------------------------------------- *)

(* Structural audit of the node store, the unique table, the free list
   and the variable-order maps; run by the test suite and the bench smoke
   gate after reordering.  Returns human-readable violations, empty when
   the manager is consistent. *)
let check_invariants m =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  for v = 0 to m.nvars - 1 do
    let l = m.var2level.(v) in
    if l < 0 || l >= m.nvars then err "var %d has out-of-range level %d" v l
    else if m.level2var.(l) <> v then
      err "var2level/level2var disagree at var %d (level %d maps back to %d)"
        v l m.level2var.(l)
  done;
  let free_seen = ref 0 in
  let n = ref m.free_head in
  while !n >= 0 do
    if m.lvl.(!n) <> free_mark then err "free-list node %d is not free" !n;
    incr free_seen;
    n := m.hnext.(!n)
  done;
  if !free_seen <> m.free_count then
    err "free_count %d but the free list threads %d entries" m.free_count
      !free_seen;
  let alloc_seen = ref 2 in
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark then begin
      incr alloc_seen;
      let l = m.lvl.(n) and lo = m.lo.(n) and hi = m.hi.(n) in
      if l < 0 || l >= m.nvars then err "node %d has invalid level %d" n l
      else begin
        if lo = hi then err "node %d is redundant (lo = hi = %d)" n lo;
        if m.lvl.(lo) = free_mark || m.lvl.(hi) = free_mark then
          err "node %d has a freed child" n
        else if l >= m.lvl.(lo) || l >= m.lvl.(hi) then
          err "node %d at level %d violates the order invariant" n l;
        let b = hash3 l lo hi m.bucket_mask in
        let count = ref 0 in
        let c = ref m.buckets.(b) in
        while !c >= 0 do
          if m.lvl.(!c) = l && m.lo.(!c) = lo && m.hi.(!c) = hi then
            incr count;
          c := m.hnext.(!c)
        done;
        if !count = 0 then
          err "node %d missing from its unique-table bucket" n;
        if !count > 1 then
          err "node (%d, %d, %d) duplicated in the unique table" l lo hi
      end
    end
  done;
  if !alloc_seen <> m.allocated then
    err "allocated count %d but %d nodes live in the arrays" m.allocated
      !alloc_seen;
  List.rev !errs

let addref m n =
  m.refc.(n) <- m.refc.(n) + 1;
  n

let delref m n =
  assert (m.refc.(n) > 0);
  m.refc.(n) <- m.refc.(n) - 1

let iter_live m f =
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark then f n
  done

let visited_clear m = Bytes.fill m.visited 0 (Bytes.length m.visited) '\000'
let visited_mem m n = Bytes.get m.visited n <> '\000'
let visited_add m n = Bytes.set m.visited n '\001'
