(* Whole-universe snapshots: the persistent form of an analysis run.

   A snapshot captures everything needed to answer relational queries
   without re-running the fixed points: the domain / attribute /
   physical-domain declarations, the variable order (as the current
   levels of every physical-domain bit, densely renumbered), and every
   named relation as a shared-structure levelized BDD dump
   (Jedd_bdd.Levelized) plus its schema and tuple count.

   File layout:

     "JEDDSNAP"  8-byte magic
     i64         format version
     i64         payload length in bytes
     16 bytes    MD5 of the payload
     payload     Binio-encoded body (see [write_payload])

   Loading rebuilds a fresh universe on any backend: physical domains
   are declared in their recorded order, the recorded level permutation
   is imposed with adjacent swaps on the still-empty manager (cheap),
   and each relation is imported bottom-up.  Every recorded tuple count
   is re-verified after import, so a snapshot that decodes but does not
   round-trip is rejected, not served.

   Any structural problem — bad magic, version skew, length or digest
   mismatch, truncation, dangling names, malformed dumps, tuple-count
   mismatch — raises [Corrupt] with a description. *)

module M = Jedd_bdd.Manager
module Lv = Jedd_bdd.Levelized
module U = Jedd_relation.Universe
module B = Jedd_relation.Backend
module R = Jedd_relation.Relation
module Dom = Jedd_relation.Domain
module Attr = Jedd_relation.Attribute
module Phys = Jedd_relation.Physdom
module Schema = Jedd_relation.Schema

type t = {
  u : U.t;
  meta : (string * string) list;
  domains : (string * Dom.t) list;  (* declaration order *)
  attrs : (string * Attr.t) list;
  physdoms : (string * Phys.t) list;  (* declaration order *)
  relations : (string * R.t) list;
}

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let magic = "JEDDSNAP"
let format_version = 1

(* -- saving ------------------------------------------------------------- *)

(* Dense level renumbering: dump-time manager levels (which may have
   holes from scratch physical domains, and arbitrary order after
   dynamic reordering) -> 0..k-1, monotonically.  Only the declared
   physical domains' bits are recorded; every relation's support must
   lie inside them (fields are always coerced to declared layouts). *)
let dense_remap physdoms =
  let levels =
    List.concat_map
      (fun (_, p) -> Array.to_list (Phys.levels p))
      physdoms
    |> List.sort_uniq compare
  in
  let tbl = Hashtbl.create 64 in
  List.iteri (fun i l -> Hashtbl.add tbl l i) levels;
  tbl

let write_dump w (d : Lv.t) =
  Binio.int_ w d.Lv.root;
  Binio.int_ w (Array.length d.Lv.blocks);
  Array.iter
    (fun (l, lo, hi) ->
      Binio.int_ w l;
      Binio.int_array w lo;
      Binio.int_array w hi)
    d.Lv.blocks

let read_dump r : Lv.t =
  let root = Binio.read_int r in
  let nblocks = Binio.read_int r in
  if nblocks < 0 then corrupt "negative block count";
  let blocks =
    Array.init nblocks (fun _ ->
        let l = Binio.read_int r in
        let lo = Binio.read_int_array r in
        let hi = Binio.read_int_array r in
        (l, lo, hi))
  in
  { Lv.blocks; root }

let write_payload w s =
  let backend = U.backend s.u in
  let remap = dense_remap s.physdoms in
  let remap_level name l =
    match Hashtbl.find_opt remap l with
    | Some i -> i
    | None ->
      invalid_arg
        (Printf.sprintf
           "Snapshot: relation %s uses BDD levels outside the declared \
            physical domains"
           name)
  in
  Binio.list_ w
    (fun w (k, v) ->
      Binio.string_ w k;
      Binio.string_ w v)
    (s.meta
    @ [
        ("jedd.version", Jedd_relation.Version.version);
        ("jedd.backend", B.kind_name (U.backend_kind s.u));
      ]);
  Binio.list_ w
    (fun w (name, d) ->
      Binio.string_ w name;
      Binio.int_ w (Dom.size d))
    s.domains;
  Binio.list_ w
    (fun w (name, a) ->
      Binio.string_ w name;
      Binio.string_ w (Dom.name (Attr.domain a)))
    s.attrs;
  Binio.list_ w
    (fun w (name, p) ->
      Binio.string_ w name;
      Binio.int_ w (Phys.width p);
      Binio.int_array w
        (Array.map (fun l -> remap_level name l) (Phys.levels p)))
    s.physdoms;
  Binio.list_ w
    (fun w (name, rel) ->
      Binio.string_ w name;
      Binio.list_ w
        (fun w (e : Schema.entry) ->
          Binio.string_ w (Attr.name e.attr);
          let pname =
            match
              List.find_opt (fun (_, p) -> Phys.equal p e.phys) s.physdoms
            with
            | Some (n, _) -> n
            | None ->
              invalid_arg
                (Printf.sprintf
                   "Snapshot: relation %s stores attribute %s in an \
                    undeclared (scratch?) physical domain %s"
                   name (Attr.name e.attr) (Phys.name e.phys))
          in
          Binio.string_ w pname)
        (Schema.entries (R.schema rel));
      Binio.int_ w (R.size rel);
      let dump = B.export_levelized backend (R.root rel) in
      write_dump w (Lv.map_levels (remap_level name) dump))
    s.relations

let bytes_of_payload payload =
  let w = Binio.writer () in
  Buffer.add_string w magic;
  Binio.int_ w format_version;
  Binio.int_ w (String.length payload);
  Buffer.add_string w (Digest.string payload);
  Buffer.add_string w payload;
  Binio.contents w

let to_bytes s =
  let body = Binio.writer () in
  write_payload body s;
  bytes_of_payload (Binio.contents body)

(* -- loading ------------------------------------------------------------ *)

(* Impose the recorded variable order on a freshly declared (and still
   empty) manager: selection sort with adjacent swaps, O(k^2) on at most
   a few hundred variables carrying zero nodes. *)
let impose_order m ~nvars ~vars_by_target =
  for target = 0 to nvars - 1 do
    let v = vars_by_target.(target) in
    let c = M.level_of_var m v in
    for l = c - 1 downto target do
      M.swap_adjacent m l
    done
  done

(* Verify the framing (magic, version, length, checksum) and return the
   raw payload.  Shared by [of_bytes] and the differential-snapshot
   machinery in [Delta], which splices payloads byte-for-byte. *)
let payload_of_bytes data =
  try
    if String.length data < 8 || String.sub data 0 8 <> magic then
      corrupt "bad magic (not a jedd snapshot)";
    let r = Binio.reader ~pos:8 data in
    let version = Binio.read_int r in
    if version <> format_version then
      corrupt "unsupported snapshot format version %d (expected %d)" version
        format_version;
    let payload_len = Binio.read_int r in
    let digest =
      Binio.need r 16;
      let d = String.sub data r.Binio.pos 16 in
      r.Binio.pos <- r.Binio.pos + 16;
      d
    in
    if Binio.remaining r <> payload_len then
      corrupt "payload length mismatch (header says %d bytes, file has %d)"
        payload_len (Binio.remaining r);
    let payload = String.sub data r.Binio.pos payload_len in
    let found = Digest.string payload in
    if found <> digest then
      corrupt
        "checksum mismatch (snapshot body is damaged): header records %s, \
         body hashes to %s"
        (Digest.to_hex digest) (Digest.to_hex found);
    payload
  with Binio.Truncated -> corrupt "snapshot is truncated"

let of_bytes ?(node_capacity = 1 lsl 16) ?node_limit ?backend ?(freeze = false)
    data =
  try
    let payload = payload_of_bytes data in
    let r = Binio.reader payload in
    (* payload *)
    let meta =
      Binio.read_list r (fun r ->
          let k = Binio.read_string r in
          let v = Binio.read_string r in
          (k, v))
    in
    let domains =
      Binio.read_list r (fun r ->
          let name = Binio.read_string r in
          let size = Binio.read_int r in
          if size < 1 then corrupt "domain %s has non-positive size %d" name size;
          (name, Dom.declare ~name ~size ()))
    in
    let find_domain name =
      match List.assoc_opt name domains with
      | Some d -> d
      | None -> corrupt "attribute references unknown domain %s" name
    in
    let attrs =
      Binio.read_list r (fun r ->
          let name = Binio.read_string r in
          let dname = Binio.read_string r in
          (name, Attr.declare ~name ~domain:(find_domain dname)))
    in
    let phys_specs =
      Binio.read_list r (fun r ->
          let name = Binio.read_string r in
          let width = Binio.read_int r in
          let levels = Binio.read_int_array r in
          if width < 1 then corrupt "physdom %s has non-positive width" name;
          if Array.length levels <> width then
            corrupt "physdom %s: %d recorded levels for width %d" name
              (Array.length levels) width;
          (name, width, levels))
    in
    let u = U.create ~node_capacity ?node_limit ?backend () in
    let mgr = U.manager u in
    let physdoms =
      List.map
        (fun (name, width, _) -> (name, Phys.declare u ~name ~bits:width))
        phys_specs
    in
    let nvars = M.num_vars mgr in
    (* recorded levels must be a permutation of 0..nvars-1 *)
    let vars_by_target = Array.make (max nvars 1) (-1) in
    List.iter2
      (fun (_, p) (name, _, recorded) ->
        let current = Phys.levels p in
        Array.iteri
          (fun j target ->
            if target < 0 || target >= nvars then
              corrupt "physdom %s: recorded level %d out of range" name target;
            if vars_by_target.(target) >= 0 then
              corrupt "physdom %s: recorded level %d assigned twice" name target;
            (* the manager is fresh: current levels are variable ids *)
            vars_by_target.(target) <- current.(j))
          recorded)
      physdoms phys_specs;
    if nvars > 0 && Array.exists (fun v -> v < 0) vars_by_target then
      corrupt "recorded variable order does not cover every level";
    impose_order mgr ~nvars ~vars_by_target;
    let backend_t = U.backend u in
    let find_attr name =
      match List.assoc_opt name attrs with
      | Some a -> a
      | None -> corrupt "relation schema references unknown attribute %s" name
    in
    let find_phys name =
      match List.assoc_opt name physdoms with
      | Some p -> p
      | None ->
        corrupt "relation schema references unknown physical domain %s" name
    in
    let relations =
      Binio.read_list r (fun r ->
          let name = Binio.read_string r in
          let entries =
            Binio.read_list r (fun r ->
                let aname = Binio.read_string r in
                let pname = Binio.read_string r in
                { Schema.attr = find_attr aname; phys = find_phys pname })
          in
          let schema =
            try Schema.make entries
            with Invalid_argument msg ->
              corrupt "relation %s has an invalid schema: %s" name msg
          in
          let count = Binio.read_int r in
          let dump = read_dump r in
          let root =
            try B.import_levelized backend_t dump
            with Lv.Malformed msg ->
              corrupt "relation %s has a malformed BDD dump: %s" name msg
          in
          let rel = R.of_root u schema root in
          B.delref backend_t root;
          let actual = R.size rel in
          if actual <> count then
            corrupt
              "relation %s does not round-trip: %d tuples recorded, %d \
               reconstructed"
              name count actual;
          (name, rel))
    in
    if not (Binio.at_end r) then corrupt "trailing bytes after snapshot body";
    (* Everything the snapshot pins is referenced by now; freezing here
       compacts reconstruction garbage and lands the universe directly
       in read-only serving mode. *)
    if freeze then U.freeze u;
    { u; meta; domains; attrs; physdoms; relations }
  with Binio.Truncated -> corrupt "snapshot is truncated"

(* -- convenience -------------------------------------------------------- *)

let save_file path s =
  let data = to_bytes s in
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".snapshot" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp path

let load_file ?node_capacity ?node_limit ?backend ?freeze path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> corrupt "cannot open snapshot %s: %s" path msg
  in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  try of_bytes ?node_capacity ?node_limit ?backend ?freeze data
  with Corrupt msg -> corrupt "%s: %s" path msg

let meta_value s key = List.assoc_opt key s.meta

(* Relation lookup with qualified-name convenience: an exact match
   wins; otherwise a name with no dot matches "Class.name" when the
   suffix is unambiguous. *)
let find_relation s name =
  match List.assoc_opt name s.relations with
  | Some r -> Some r
  | None ->
    if String.contains name '.' then None
    else begin
      let suffix = "." ^ name in
      match
        List.filter
          (fun (n, _) -> String.ends_with ~suffix n)
          s.relations
      with
      | [ (_, r) ] -> Some r
      | _ -> None
    end
