lib/jedd/liveness.mli: Tast
