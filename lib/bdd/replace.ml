type man = Manager.t
type node = Manager.node

let zero = Manager.zero
let one = Manager.one

(* Permutations are interned: [make_perm] canonicalises the pair list and
   hands back the same [perm] (same [id]) for the same mapping.  The id
   is folded into operation-cache keys, so repeated fused calls with the
   same permutation — the common case, a fixpoint re-running one layout
   change every iteration — hit the cache across top-level calls. *)
type perm = {
  id : int; (* 0 is the identity *)
  map : int array; (* level -> level; identity beyond the array *)
  ident : bool;
}

let intern_table : ((int * int) list, perm) Hashtbl.t = Hashtbl.create 32
let next_perm_id = ref 1

(* The intern table is global and may be hit from several domains when
   analyses run in parallel; interning is rare (layout changes, not
   per-operation), so one mutex is plenty. *)
let intern_lock = Mutex.create ()

let identity_perm = { id = 0; map = [||]; ident = true }

let make_perm _m pairs =
  let pairs = List.filter (fun (s, d) -> s <> d) pairs in
  let pairs = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  if pairs = [] then identity_perm
  else begin
    Mutex.lock intern_lock;
    let found = Hashtbl.find_opt intern_table pairs in
    Mutex.unlock intern_lock;
    match found with
    | Some p -> p
    | None ->
      let targets = Hashtbl.create 16 in
      let max_src =
        List.fold_left
          (fun acc (src, dst) ->
            if src < 0 || dst < 0 then
              invalid_arg "Replace.make_perm: negative level";
            if Hashtbl.mem targets dst then
              invalid_arg "Replace.make_perm: non-injective permutation";
            Hashtbl.add targets dst ();
            max acc src)
          (-1) pairs
      in
      let map = Array.init (max_src + 1) (fun i -> i) in
      List.iter
        (fun (src, dst) ->
          if map.(src) <> src then
            invalid_arg "Replace.make_perm: duplicate source level";
          map.(src) <- dst)
        pairs;
      Mutex.lock intern_lock;
      let p =
        (* re-check: another domain may have interned the same mapping *)
        match Hashtbl.find_opt intern_table pairs with
        | Some p -> p
        | None ->
          let p = { id = !next_perm_id; map; ident = false } in
          incr next_perm_id;
          Hashtbl.add intern_table pairs p;
          p
      in
      Mutex.unlock intern_lock;
      p
  end

let identity _m = identity_perm
let is_identity p = p.ident
let perm_id p = p.id
let perm_map_len p = Array.length p.map

let apply_level p lvl =
  if lvl < Array.length p.map then Array.unsafe_get p.map lvl else lvl

(* -- plain replace (rebuilds via ite, handles arbitrary injections) ----- *)

let replace m f p =
  if is_identity p then f
  else begin
    let memo = Hashtbl.create 1024 in
    let rec go f =
      if Manager.is_terminal f then f
      else
        match Hashtbl.find_opt memo f with
        | Some r -> r
        | None ->
          let r0 = go (Manager.low m f) in
          let r1 = go (Manager.high m f) in
          let lvl = apply_level p (Manager.level m f) in
          (* [ite] reinserts the variable at its new position even when
             the permutation is not order-preserving. *)
          let r = Ops.ite m (Manager.var m lvl) r1 r0 in
          Hashtbl.add memo f r;
          r
    in
    go f
  end

(* -- fused kernels ------------------------------------------------------ *)

let tag_perm_ok = Manager.register_tag "perm-order-ok"
let tag_relprod_replace = Manager.register_tag "relprod-replace"
let tag_replace_exist = Manager.register_tag "replace-exist"

(* Counters exposed for tests and the benchmark JSON: how often the fused
   recursion ran vs. how often a non-order-preserving permutation forced
   the materialising fallback. *)
let fused_hits = Atomic.make 0
let fallback_hits = Atomic.make 0
let fused_stats () = (Atomic.get fused_hits, Atomic.get fallback_hits)

(* The fused recursions relabel each node of the traversed operand in
   place, which is sound iff mapped levels still strictly increase along
   every edge of its DAG.  The inner recursion memoises through the
   shared cache (keyed on node and permutation id); the top-level verdict
   additionally goes into a dedicated table because it is a structural
   property of the node graph — it survives cache invalidation and only
   dies when GC recycles handles or a reorder moves levels around, so
   fixpoints do not re-traverse their operands after every collection of
   the operation cache. *)
let ok_memo : (int * int * int, (int * int) * bool) Hashtbl.t =
  Hashtbl.create 256

(* The verdict memo is global (keyed by manager uid); parallel analyses
   probe it concurrently, so its accesses are serialised.  The traversal
   itself runs outside the lock — it only touches the manager's (already
   domain-safe) cache. *)
let ok_memo_lock = Mutex.create ()

let order_preserving_on m p f =
  let key = (Manager.uid m, p.id, f) in
  let gcs = (Manager.gc_count m, Manager.order_gen m) in
  Mutex.lock ok_memo_lock;
  let cached = Hashtbl.find_opt ok_memo key in
  Mutex.unlock ok_memo_lock;
  match cached with
  | Some (stamp, ok) when stamp = gcs -> ok
  | _ ->
    let rec ok f =
      if Manager.is_terminal f then true
      else
        match Manager.cache_lookup m tag_perm_ok f p.id 0 with
        | 1 -> true
        | 0 -> false
        | _ ->
          let ml = apply_level p (Manager.level m f) in
          let child_ok c =
            Manager.is_terminal c
            || (ml < apply_level p (Manager.level m c) && ok c)
          in
          let r = child_ok (Manager.low m f) && child_ok (Manager.high m f) in
          Manager.cache_store m tag_perm_ok f p.id 0 (if r then 1 else 0);
          r
    in
    let r = ok f in
    Mutex.lock ok_memo_lock;
    if Hashtbl.length ok_memo > 65536 then Hashtbl.reset ok_memo;
    Hashtbl.replace ok_memo key (gcs, r);
    Mutex.unlock ok_memo_lock;
    r

(* Fold the permutation id and the quantification cube into one cache-key
   slot.  Node handles stay far below 2^31 in any realistic run (the
   node arrays would not fit in memory otherwise), so the packing is
   exact. *)
let pack_key perm_id cube = (perm_id lsl 31) lor cube

(* Advance the cube past variables above [lvl] (cf. Quant.cube_from). *)
let rec cube_from m cube lvl =
  if Manager.is_terminal cube || Manager.level m cube >= lvl then cube
  else cube_from m (Manager.high m cube) lvl

(* [fused_relprod m f g p cube] = exist cube (f /\ replace g p), in one
   recursion, without building [replace g p].  Requires [p] to be
   order-preserving on [g] (checked by the caller).  [g]'s levels are
   mapped on the fly; the cube lives in the shared, post-permutation
   variable space. *)
let rec fused_relprod m f g p cube =
  if f = zero || g = zero then zero
  else if Manager.is_terminal f && Manager.is_terminal g then one
  else if g = one && Manager.is_terminal cube then f
  else if
    (* the permutation is identity beyond its map array: a pure-band tail
       whose [g] sits entirely below the remapped region is just f /\ g *)
    f = one && Manager.is_terminal cube
    && Manager.level m g >= Array.length p.map
  then g
  else begin
    let lf = Manager.level m f in
    let lg =
      if Manager.is_terminal g then Manager.terminal_level
      else apply_level p (Manager.level m g)
    in
    let lvl = if lf < lg then lf else lg in
    let cube = cube_from m cube lvl in
    let key_c = pack_key p.id cube in
    let r = Manager.cache_lookup m tag_relprod_replace f g key_c in
    if r >= 0 then r
    else
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let r =
        if (not (Manager.is_terminal cube)) && Manager.level m cube = lvl
        then begin
          let r0 = fused_relprod m f0 g0 p cube in
          if r0 = one then one
          else Ops.bor m r0 (fused_relprod m f1 g1 p cube)
        end
        else
          Manager.mk m lvl (fused_relprod m f0 g0 p cube)
            (fused_relprod m f1 g1 p cube)
      in
      Manager.cache_store m tag_relprod_replace f g key_c r;
      r
  end

let relprod_replace m f g p cube =
  if is_identity p then
    if Manager.is_terminal cube then Ops.band m f g
    else Quant.relprod m f g cube
  else if order_preserving_on m p g then begin
    Atomic.incr fused_hits;
    fused_relprod m f g p cube
  end
  else begin
    (* Non-order-preserving move: materialise, as the unfused pipeline
       would.  Rare in practice — the runtime's block layouts keep bit
       order — but required for full generality. *)
    Atomic.incr fallback_hits;
    let g' = replace m g p in
    if Manager.is_terminal cube then Ops.band m f g'
    else Quant.relprod m f g' cube
  end

(* [fused_replace_exist m f p cube] = replace (exist f cube) p in one
   recursion: quantified levels disappear, surviving levels are relabeled
   on the way back up.  The cube lives in [f]'s original variable space.
   Requires [p] order-preserving on [f] (quantified levels included —
   checking the survivors only would need a second traversal and the
   stricter test almost never rejects more). *)
let rec fused_replace_exist m f p cube =
  if Manager.is_terminal f then f
  else if
    (* nothing left to quantify and every remaining level is fixed *)
    Manager.is_terminal cube && Manager.level m f >= Array.length p.map
  then f
  else begin
    let lvl = Manager.level m f in
    let cube = cube_from m cube lvl in
    let key_c = pack_key p.id cube in
    let r = Manager.cache_lookup m tag_replace_exist f key_c 0 in
    if r >= 0 then r
    else
      let r =
        if (not (Manager.is_terminal cube)) && Manager.level m cube = lvl
        then begin
          let r0 = fused_replace_exist m (Manager.low m f) p cube in
          if r0 = one then one
          else Ops.bor m r0 (fused_replace_exist m (Manager.high m f) p cube)
        end
        else
          Manager.mk m (apply_level p lvl)
            (fused_replace_exist m (Manager.low m f) p cube)
            (fused_replace_exist m (Manager.high m f) p cube)
      in
      Manager.cache_store m tag_replace_exist f key_c 0 r;
      r
  end

let replace_exist m f p cube =
  if is_identity p then Quant.exist m f cube
  else if order_preserving_on m p f then begin
    Atomic.incr fused_hits;
    fused_replace_exist m f p cube
  end
  else begin
    Atomic.incr fallback_hits;
    replace m (Quant.exist m f cube) p
  end
