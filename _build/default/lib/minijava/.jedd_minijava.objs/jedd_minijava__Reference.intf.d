lib/minijava/reference.mli: Program Set
