(* Subset-based, field-sensitive points-to analysis in Jedd — the
   BDD algorithm of Berndl et al. [5], which §5 reports both hand-coded
   (our [Pointsto_baseline]) and in Jedd (this module, Table 2).

   The mutually recursive pt/fieldpt fixed point is driven semi-naively
   through Incr.Fixpoint: every occurrence of a recursive relation in a
   rule body gets a delta variant (delta in that position, the full
   accumulator elsewhere; the accumulator always already absorbs the
   delta, so delta×delta derivations are covered).  [runNaive] keeps
   the paper's original loop for the differential suite. *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp
module R = Jedd_relation.Relation
module Fixpoint = Jedd_incr.Fixpoint

let source =
  "class PointsTo {\n\
  \  <var:V1, heap:H1> alloc;\n\
  \  <src:V1, dst:V2> assign;\n\
  \  <base:V1, field:F1, dst:V2> load;\n\
  \  <src:V1, base:V2, field:F1> store;\n\
  \  <var:V1, heap:H1> pt = 0B;\n\
  \  <baseheap:H2, field:F1, heap:H1> fieldpt = 0B;\n\
  \  public <var:V1, heap:H1> seedPt() {\n\
  \    return alloc;\n\
  \  }\n\
  \  // delta variants of the copy and load rules (delta in the pt and\n\
  \  // fieldpt positions respectively), against the full accumulators\n\
  \  public <var:V1, heap:H1> stepPt( <var:V1, heap:H1> dpt,\n\
  \                                   <baseheap:H2, field:F1, heap:H1> dfp ) {\n\
  \    // copy rule: dst points to whatever src newly points to\n\
  \    <var:V1, heap:H1> out = (dst=>var) (assign{src} <> dpt{var});\n\
  \    // load rule, delta in the base points-to position\n\
  \    <var:V1, baseheap:H2> dptb2 = (heap=>baseheap) dpt;\n\
  \    <field:F1, dst:V2, baseheap:H2> ld1d = load{base} <> dptb2{var};\n\
  \    out |= (dst=>var) (ld1d{baseheap, field} <> fieldpt{baseheap, field});\n\
  \    // load rule, delta in the fieldpt position\n\
  \    <var:V1, baseheap:H2> ptb2 = (heap=>baseheap) pt;\n\
  \    <field:F1, dst:V2, baseheap:H2> ld1 = load{base} <> ptb2{var};\n\
  \    out |= (dst=>var) (ld1{baseheap, field} <> dfp{baseheap, field});\n\
  \    return out;\n\
  \  }\n\
  \  // delta variants of the store rule (delta in either pt position)\n\
  \  public <baseheap:H2, field:F1, heap:H1> stepFieldpt( <var:V1, heap:H1> dpt ) {\n\
  \    <base:V2, field:F1, heap:H1> st1d = store{src} <> dpt{var};\n\
  \    <var:V2, baseheap:H2> ptb = (heap=>baseheap) pt;\n\
  \    <baseheap:H2, field:F1, heap:H1> out = st1d{base} <> ptb{var};\n\
  \    <base:V2, field:F1, heap:H1> st1 = store{src} <> pt{var};\n\
  \    <var:V2, baseheap:H2> dptb = (heap=>baseheap) dpt;\n\
  \    out |= st1{base} <> dptb{var};\n\
  \    return out;\n\
  \  }\n\
  \  public void runNaive() {\n\
  \    pt = alloc;\n\
  \    <var:V1, heap:H1> old;\n\
  \    do {\n\
  \      old = pt;\n\
  \      // copy rule: dst points to whatever src points to\n\
  \      pt |= (dst=>var) (assign{src} <> pt{var});\n\
  \      // store rule: o.f = v\n\
  \      <base:V2, field:F1, heap:H1> st1 = store{src} <> pt{var};\n\
  \      <var:V2, baseheap:H2> ptb = (heap=>baseheap) pt;\n\
  \      fieldpt |= st1{base} <> ptb{var};\n\
  \      // load rule: v = o.f (profiler-tuned: keep var in V1 here,\n\
  \      // saving a replace per iteration, as in the hand-coded version)\n\
  \      <var:V1, baseheap:H2> ptb2 = (heap=>baseheap) pt;\n\
  \      <field:F1, dst:V2, baseheap:H2> ld1 = load{base} <> ptb2{var};\n\
  \      pt |= (dst=>var) (ld1{baseheap, field} <> fieldpt{baseheap, field});\n\
  \    } while (pt != old);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) =
  Common.set_fact inst "PointsTo.alloc"
    (List.map (fun (v, h) -> [ v; h ]) p.P.allocs);
  Common.set_fact inst "PointsTo.assign"
    (List.map (fun (s, d) -> [ s; d ]) p.P.assigns);
  Common.set_fact inst "PointsTo.load"
    (List.map (fun (b, f, d) -> [ b; f; d ]) p.P.loads);
  Common.set_fact inst "PointsTo.store"
    (List.map (fun (s, b, f) -> [ s; b; f ]) p.P.stores)

(* Semi-naive solve from the current pt/fieldpt state: cold from 0B,
   a warm resume after the input facts have grown. *)
let solve ?on_iter inst =
  let pt0 = Interp.get_field inst "PointsTo.pt" in
  let fp0 = Interp.get_field inst "PointsTo.fieldpt" in
  let seed_pt = Common.call_rel inst "PointsTo.seedPt" [] in
  let seed_fp = Common.empty_rel inst "PointsTo.fieldpt" in
  let step ~deltas ~accs =
    Interp.set_field inst "PointsTo.pt" accs.(0);
    Interp.set_field inst "PointsTo.fieldpt" accs.(1);
    let cpt =
      Common.call_rel inst "PointsTo.stepPt"
        [ Common.arg deltas.(0); Common.arg deltas.(1) ]
    in
    let cfp =
      Common.call_rel inst "PointsTo.stepFieldpt" [ Common.arg deltas.(0) ]
    in
    [| cpt; cfp |]
  in
  let final, stats =
    Fixpoint.solve ?on_iter ~accs:[| pt0; fp0 |]
      ~seed:[| seed_pt; seed_fp |] ~step ()
  in
  R.release seed_pt;
  R.release seed_fp;
  Interp.set_field inst "PointsTo.pt" final.(0);
  Interp.set_field inst "PointsTo.fieldpt" final.(1);
  Array.iter R.release final;
  stats

(* [~reorder:true] turns the order optimizer on for this solve: one
   explicit sifting pass over the loaded facts (which repairs a bad
   declaration order before the fixpoint amplifies it), plus the
   safe-point auto trigger for growth during the run. *)
let with_reorder reorder inst f =
  let u = Interp.universe inst in
  if reorder then begin
    Jedd_relation.Universe.reorder ~trigger:"pre-run" u;
    Jedd_relation.Universe.set_auto_reorder u (Some (1 lsl 16))
  end;
  let r = f () in
  if reorder then Jedd_relation.Universe.set_auto_reorder u None;
  r

let run ?(reorder = false) inst =
  with_reorder reorder inst (fun () -> ignore (solve inst))

let run_naive ?(reorder = false) inst =
  with_reorder reorder inst (fun () ->
      ignore (Interp.call inst "PointsTo.runNaive" []))

let results inst = Common.get_tuples inst "PointsTo.pt"
let field_results inst = Common.get_tuples inst "PointsTo.fieldpt"
