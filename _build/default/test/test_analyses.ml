(* Tests for the five whole-program analyses (§5): each Jedd analysis is
   compiled, run on generated workloads, and compared against the
   reference set/worklist implementations in Jedd_minijava.Reference.
   The hand-coded BDD baseline is checked against the same reference. *)

module P = Jedd_minijava.Program
module Workload = Jedd_minijava.Workload
module Reference = Jedd_minijava.Reference
module Suite = Jedd_analyses.Suite
module Baseline = Jedd_analyses.Pointsto_baseline
module Driver = Jedd_lang.Driver

let tiny () = Workload.generate Workload.tiny

let small () =
  Workload.generate
    {
      Workload.tiny with
      Workload.name = "small";
      classes = 14;
      sigs_per_class = 3;
      vars_per_method = 4;
      assign_factor = 5;
      field_ops_per_method = 2;
      calls_per_method = 2;
      seed = 99;
    }

let test_all_sources_compile () =
  let p = tiny () in
  List.iter
    (fun (name, _) ->
      match Driver.compile [ (name, Suite.source_for p name) ] with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "%s does not compile: %s" name
          (Driver.error_to_string e))
    Suite.analyses

let test_combined_compiles () =
  let p = tiny () in
  match Driver.compile [ ("combined.jedd", Suite.combined_source p) ] with
  | Ok c ->
    let st = c.Driver.constraint_stats in
    Alcotest.(check bool) "combined is bigger than any single analysis" true
      (st.Jedd_lang.Constraints.n_rel_exprs > 40)
  | Error e -> Alcotest.failf "combined: %s" (Driver.error_to_string e)

let check_against_reference p =
  let r = Suite.run_all p in
  (* ground truth *)
  let ref_hier = Reference.hierarchy p in
  let ref_pt, _ref_fieldpt = Reference.points_to p in
  let ref_targets = Reference.call_targets p ref_pt in
  let ref_reach = Reference.reachable p ref_targets in
  let ref_se = Reference.side_effects p ref_pt ref_targets in
  (* hierarchy: our Jedd closure is strict (no reflexive pairs) *)
  let ref_hier_strict =
    Reference.IPS.elements ref_hier
    |> List.filter (fun (a, b) -> a <> b)
    |> List.map (fun (a, b) -> [ a; b ])
  in
  Alcotest.(check (list (list int))) "hierarchy closure" ref_hier_strict
    r.Suite.subtypes;
  Alcotest.(check (list (list int)))
    "points-to"
    (Reference.IPS.elements ref_pt |> List.map (fun (a, b) -> [ a; b ]))
    r.Suite.pt;
  Alcotest.(check (list (list int)))
    "call edges"
    (Reference.IPS.elements ref_targets |> List.map (fun (a, b) -> [ a; b ]))
    r.Suite.call_edges;
  Alcotest.(check (list (list int)))
    "reachable methods"
    (Reference.IS.elements ref_reach |> List.map (fun m -> [ m ]))
    r.Suite.reachable;
  Alcotest.(check (list (list int)))
    "side effects"
    (Reference.ITS.elements ref_se |> List.map (fun (a, b, c) -> [ a; b; c ]))
    r.Suite.side_effects

let test_suite_tiny () = check_against_reference (tiny ())
let test_suite_small () = check_against_reference (small ())

let test_baseline_matches_reference () =
  let p = small () in
  let b = Baseline.create p in
  Baseline.solve b;
  let ref_pt, _ = Reference.points_to p in
  Alcotest.(check (list (list int)))
    "baseline points-to"
    (Reference.IPS.elements ref_pt |> List.map (fun (a, b) -> [ a; b ]))
    (Baseline.pt_tuples b);
  Baseline.destroy b

let test_baseline_matches_jedd () =
  let p = tiny () in
  let r = Suite.run_all p in
  let b = Baseline.create p in
  Baseline.solve b;
  Alcotest.(check (list (list int)))
    "jedd and hand-coded agree" r.Suite.pt (Baseline.pt_tuples b);
  Baseline.destroy b

let test_workload_determinism () =
  let p1 = Workload.generate (Workload.profile_named "compress") in
  let p2 = Workload.generate (Workload.profile_named "compress") in
  Alcotest.(check int) "same classes" p1.P.n_classes p2.P.n_classes;
  Alcotest.(check bool) "same statements" true
    (p1.P.assigns = p2.P.assigns && p1.P.allocs = p2.P.allocs
   && p1.P.extend = p2.P.extend)

let test_workload_profiles_scale () =
  let sizes =
    List.map
      (fun (prof : Workload.profile) ->
        let p = Workload.generate prof in
        (prof.Workload.name, p.P.n_methods))
      Workload.profiles
  in
  let get n = List.assoc n sizes in
  Alcotest.(check bool) "compress is the smallest" true
    (List.for_all (fun (_, s) -> get "compress" <= s) sizes);
  Alcotest.(check bool) "jedit is the largest" true
    (List.for_all (fun (_, s) -> get "jedit" >= s) sizes)

(* ---------------- the textual frontend ---------------- *)

module Frontend = Jedd_minijava.Frontend

let shapes_src =
  "class A { method m() { } }\n\
   class B extends A {\n\
   \  method m() { x = new B; x.m(); }\n\
   \  method main() {\n\
   \    a = new A;\n\
   \    b = new B;\n\
   \    r = a;\n\
   \    r = b;\n\
   \    r.m();\n\
   \    a.f = b;\n\
   \    c = a.f;\n\
   \  }\n\
   }\n"

let test_frontend_parses () =
  let p = Frontend.parse shapes_src in
  Alcotest.(check int) "classes" 2 p.P.n_classes;
  Alcotest.(check int) "methods" 3 p.P.n_methods;
  Alcotest.(check int) "heap sites" 3 p.P.n_heap;
  Alcotest.(check (list (pair int int))) "hierarchy" [ (1, 0) ] p.P.extend;
  Alcotest.(check int) "two calls" 2 (List.length p.P.calls);
  Alcotest.(check int) "one store, one load" 1 (List.length p.P.stores);
  Alcotest.(check int) "loads" 1 (List.length p.P.loads)

let test_frontend_entry_is_main () =
  let p = Frontend.parse shapes_src in
  (* main is method id 2 (A.m=0, B.m=1, B.main=2) *)
  Alcotest.(check (list int)) "entry" [ 2 ] p.P.entry_methods

let test_frontend_pipeline () =
  let p = Frontend.parse shapes_src in
  check_against_reference p

let test_frontend_resolution () =
  let p = Frontend.parse shapes_src in
  let r = Suite.run_all p in
  (* r points to both A and B objects; r.m() resolves to A.m (inherited)
     and B.m (override) *)
  let rm_targets =
    List.filter_map
      (function
        | [ _cs; _sg; _ty; m ] -> Some m
        | _ -> None)
      r.Suite.resolved
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "both A.m and B.m are targets" true
    (List.mem 0 rm_targets && List.mem 1 rm_targets)

let test_frontend_errors () =
  let bad name src =
    match Frontend.parse src with
    | exception Frontend.Parse_error _ -> ()
    | _ -> Alcotest.failf "%s: expected parse error" name
  in
  bad "unknown superclass" "class A extends Nope { }";
  bad "duplicate class" "class A { } class A { }";
  bad "garbage statement" "class A { method m() { x + y; } }";
  bad "unterminated" "class A { method m() {"

let test_frontend_file () =
  (* the example shipped in examples/ parses and verifies *)
  let path =
    List.find Sys.file_exists
      [ "examples/shapes.mjava"; "../examples/shapes.mjava";
        "../../examples/shapes.mjava"; "../../../examples/shapes.mjava" ]
  in
  let p = Frontend.load_file path in
  check_against_reference p

let test_resolve_virtual_reference () =
  (* sanity of the reference resolver on a hand-built program *)
  let p =
    {
      P.empty with
      P.n_classes = 3;
      n_sigs = 2;
      n_methods = 3;
      extend = [ (1, 0); (2, 1) ];
      declares = [ (0, 0, 0); (0, 1, 1); (1, 1, 2) ];
      method_class = [| 0; 0; 1 |];
      method_sig = [| 0; 1; 1 |];
    }
  in
  Alcotest.(check (option int)) "inherited" (Some 0)
    (P.resolve_virtual p ~rectype:2 ~signature:0);
  Alcotest.(check (option int)) "overridden" (Some 2)
    (P.resolve_virtual p ~rectype:2 ~signature:1);
  Alcotest.(check (option int)) "direct" (Some 1)
    (P.resolve_virtual p ~rectype:0 ~signature:1)

let suite =
  [
    Alcotest.test_case "all five sources compile" `Quick
      test_all_sources_compile;
    Alcotest.test_case "combined program compiles" `Quick
      test_combined_compiles;
    Alcotest.test_case "suite matches reference (tiny)" `Quick test_suite_tiny;
    Alcotest.test_case "suite matches reference (small)" `Quick
      test_suite_small;
    Alcotest.test_case "baseline matches reference" `Quick
      test_baseline_matches_reference;
    Alcotest.test_case "baseline matches jedd" `Quick test_baseline_matches_jedd;
    Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
    Alcotest.test_case "workload profiles scale" `Quick
      test_workload_profiles_scale;
    Alcotest.test_case "reference virtual resolution" `Quick
      test_resolve_virtual_reference;
    Alcotest.test_case "frontend parses" `Quick test_frontend_parses;
    Alcotest.test_case "frontend entry points" `Quick
      test_frontend_entry_is_main;
    Alcotest.test_case "frontend pipeline" `Quick test_frontend_pipeline;
    Alcotest.test_case "frontend resolution" `Quick test_frontend_resolution;
    Alcotest.test_case "frontend errors" `Quick test_frontend_errors;
    Alcotest.test_case "frontend example file" `Quick test_frontend_file;
  ]
