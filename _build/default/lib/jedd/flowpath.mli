(** Flow paths (§3.3.2): sequences of attributes from a
    programmer-specified physical domain along equality and assignment
    edges, used to rule out computation paths where an attribute is
    replaced multiple times without reason.

    Attributes linked by {e equality} edges must end up in the same
    physical domain no matter what (clause type 5), so we quotient the
    graph by equality first and enumerate paths over the equivalence
    classes along assignment edges.  This is semantically identical to
    the paper's attribute-level paths (clause 5 propagates the domain
    within a class) and keeps enumeration tractable.  Enumeration is
    breadth-first (shortest paths are exactly the subset-minimal ones the
    paper keeps) and capped per class; the cap is reported so callers can
    log it. *)

type t = {
  class_of : int array;  (** constraint node -> class id *)
  members : int list array;  (** class id -> constraint nodes *)
  n_classes : int;
  class_edges : (int * int) list;  (** assignment edges, both directions *)
  sources : (int * Tast.phys_info) list;
      (** classes containing a specified attribute, with the spec *)
}

(** A flow path: the specified physical domain it starts from and the
    classes it traverses (source first). *)
type path = { start_phys : Tast.phys_info; through : int list }

val analyze : Constraints.t -> t

val enumerate : t -> max_per_class:int -> path list array * bool
(** Paths ending at each class, shortest first; the boolean reports
    whether the cap truncated anything. *)

val unreachable : t -> path list array -> int list
(** Classes with at least one member but no flow path — the error the
    paper detects while building clause 6. *)
