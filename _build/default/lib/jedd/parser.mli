(** Recursive-descent parser for Jedd.

    Implements the paper's Figure 5 grammar (joins with attribute lists,
    cast-like replacement prefixes, relation literals, the 0B/1B
    constants) on top of a Java-lite host subset: top-level domain /
    attribute / physdom declarations and classes containing relation
    fields and methods with structured statements.

    Menhir is not available in this environment, so the parser is
    hand-written; the grammar is small and needs at most three tokens of
    lookahead (to tell a replacement prefix [(a=>...)e] from a
    parenthesised expression). *)

exception Parse_error of string * Ast.pos

val parse_program : file:string -> string -> Ast.program
(** Parse a whole compilation unit.  Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (used by tests and the REPL-ish tools). *)
