(* A Java-like whole-program intermediate representation: the substrate
   the five whole-program analyses (§5) run on.

   This stands in for Soot's Jimple: classes with single inheritance,
   method signatures, concrete methods, and the four pointer-relevant
   statement forms (allocation, copy, field store, field load) plus
   virtual call sites.  Entities are dense integers, which is also
   exactly what Jedd domains need. *)

type call_site = {
  cs_id : int;
  cs_recv : int;  (* receiver variable *)
  cs_sig : int;  (* invoked signature *)
  cs_in_method : int;  (* enclosing method *)
}

type t = {
  n_classes : int;
  n_sigs : int;
  n_methods : int;
  n_vars : int;
  n_heap : int;  (* allocation sites *)
  n_fields : int;
  extend : (int * int) list;  (* (subclass, direct superclass) *)
  declares : (int * int * int) list;  (* (class, signature, method) *)
  method_class : int array;  (* method -> declaring class *)
  method_sig : int array;
  var_method : int array;  (* variable -> enclosing method *)
  heap_type : int array;  (* allocation site -> dynamic type *)
  allocs : (int * int) list;  (* (var, heap object) *)
  assigns : (int * int) list;  (* (source var, destination var) *)
  stores : (int * int * int) list;  (* (source var, base var, field) *)
  loads : (int * int * int) list;  (* (base var, field, destination var) *)
  calls : call_site list;
  entry_methods : int list;
}

let empty =
  {
    n_classes = 0;
    n_sigs = 0;
    n_methods = 0;
    n_vars = 0;
    n_heap = 0;
    n_fields = 0;
    extend = [];
    declares = [];
    method_class = [||];
    method_sig = [||];
    var_method = [||];
    heap_type = [||];
    allocs = [];
    assigns = [];
    stores = [];
    loads = [];
    calls = [];
    entry_methods = [];
  }

(* Reference implementations used by tests and by the analyses'
   correctness checks: direct OCaml computations of the program facts
   the BDD analyses must reproduce. *)

let superclasses p cls =
  (* walk up the extend chain, nearest first (excluding cls itself) *)
  let direct = Hashtbl.create 16 in
  List.iter (fun (sub, sup) -> Hashtbl.replace direct sub sup) p.extend;
  let rec go c acc =
    match Hashtbl.find_opt direct c with
    | Some sup when not (List.mem sup acc) -> go sup (sup :: acc)
    | _ -> List.rev acc
  in
  go cls []

let resolve_virtual p ~rectype ~signature =
  (* the Figure 4 algorithm, sequentially: search rectype then up *)
  let declares_tbl = Hashtbl.create 64 in
  List.iter
    (fun (c, s, m) -> Hashtbl.replace declares_tbl (c, s) m)
    p.declares;
  let rec search c =
    match Hashtbl.find_opt declares_tbl (c, signature) with
    | Some m -> Some m
    | None -> (
      match List.assoc_opt c p.extend with
      | Some sup -> search sup
      | None -> None)
  in
  search rectype

let pp_stats ppf p =
  Format.fprintf ppf
    "classes=%d sigs=%d methods=%d vars=%d heap=%d fields=%d stmts=%d calls=%d"
    p.n_classes p.n_sigs p.n_methods p.n_vars p.n_heap p.n_fields
    (List.length p.allocs + List.length p.assigns + List.length p.stores
   + List.length p.loads)
    (List.length p.calls)
