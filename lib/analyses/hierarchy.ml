(* Class-hierarchy analysis: the transitive closure of the direct
   superclass relation (the Hierarchy module of Figure 2).

   The closure is a monotone fixed point, so it is driven semi-naively
   through Incr.Fixpoint: [seedH] re-derives the non-recursive rule
   (the direct edges), [stepH] fires the recursive rule on a delta
   only.  [runNaive] keeps the paper's original do-while loop for the
   naive-vs-semi-naive differential suite. *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp
module R = Jedd_relation.Relation
module Fixpoint = Jedd_incr.Fixpoint

let source =
  "class Hierarchy {\n\
  \  <subtype:T1, supertype:T3> extendH;\n\
  \  <subtype:T1, supertype:T2> subtypes = 0B;\n\
  \  public <subtype:T1, supertype:T2> seedH() {\n\
  \    return extendH;\n\
  \  }\n\
  \  public <subtype:T1, supertype:T2> stepH( <subtype:T1, supertype:T2> delta ) {\n\
  \    return delta{supertype} <> extendH{subtype};\n\
  \  }\n\
  \  public void runNaive() {\n\
  \    subtypes = extendH;\n\
  \    <subtype:T1, supertype:T2> delta;\n\
  \    do {\n\
  \      delta = subtypes{supertype} <> extendH{subtype};\n\
  \      delta -= subtypes;\n\
  \      subtypes |= delta;\n\
  \    } while (delta != 0B);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) =
  Common.set_fact inst "Hierarchy.extendH"
    (List.map (fun (sub, sup) -> [ sub; sup ]) p.P.extend)

(* Semi-naive solve from the current state of [subtypes]: cold when the
   field is 0B, a warm resume after [extendH] has grown. *)
let solve ?on_iter inst =
  let acc0 = Interp.get_field inst "Hierarchy.subtypes" in
  let seed = Common.call_rel inst "Hierarchy.seedH" [] in
  let step ~deltas ~accs =
    Interp.set_field inst "Hierarchy.subtypes" accs.(0);
    [| Common.call_rel inst "Hierarchy.stepH" [ Common.arg deltas.(0) ] |]
  in
  let final, stats =
    Fixpoint.solve ?on_iter ~accs:[| acc0 |] ~seed:[| seed |] ~step ()
  in
  R.release seed;
  Interp.set_field inst "Hierarchy.subtypes" final.(0);
  R.release final.(0);
  stats

let run inst = ignore (solve inst)
let run_naive inst = ignore (Interp.call inst "Hierarchy.runNaive" [])

(* strict transitive closure as (sub, super) pairs, sub <> super *)
let results inst = Common.get_tuples inst "Hierarchy.subtypes"
