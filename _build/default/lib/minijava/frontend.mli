(** A textual front end for the Java-like substrate, so the analyses can
    run on hand-written programs as well as generated ones (standing in
    for Soot's ability to load real class files).

    The source format covers exactly the features the whole-program
    analyses consume:

    {v
    class A {
      method foo() {
        a = new B;        // allocation (site type B)
        b = a;            // copy
        a.f = b;          // field store
        c = b.f;          // field load
        c.foo();          // virtual call
      }
    }
    class B extends A {
      method foo() { }
      method main() { x = new B; x.foo(); }
    }
    v}

    Classes are declared in any order; [extends] must name a declared
    class.  Methods take no parameters (inter-procedural data flow is
    modelled with field reads/writes, as in the flow-insensitive
    analyses).  Variables are method-local names; fields are global
    names; every [new C] is a distinct allocation site.  Methods named
    [main] are the entry points (all methods, if there is no [main]). *)

exception Parse_error of string * int  (** message, line *)

val parse : string -> Program.t

val load_file : string -> Program.t
