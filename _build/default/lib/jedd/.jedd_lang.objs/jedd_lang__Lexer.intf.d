lib/jedd/lexer.mli: Ast
