lib/analyses/suite.mli: Jedd_lang Jedd_minijava
