(* The query worker pool: N OCaml domains evaluating protocol requests
   against one shared (ideally frozen) universe.

   With [workers > 1] the universe must be frozen and in-core: the pool
   flips the manager into parallel mode so hash-consing goes through
   the lock-striped unique table and every domain memoises in its own
   operation cache, while the frozen flag removes the whole
   GC/refcount/reorder coordination problem — queries only ever
   allocate scratch nodes, never reclaim.  Scratch is reclaimed by
   [frozen_sweep] at pool-local quiescence: the last worker to go idle
   sweeps while holding the pool lock, so no other domain can be
   touching the node store.

   With [workers = 1] any universe works (frozen or not) and the pool
   degenerates to the classic single-worker queue. *)

module M = Jedd_bdd.Manager
module U = Jedd_relation.Universe
module B = Jedd_relation.Backend
module Json = Jedd_server.Json
module Protocol = Jedd_server.Protocol
module Qeval = Jedd_server.Qeval
module Snapshot = Jedd_store.Snapshot

type job = {
  request : Json.t;
  cancelled : bool Atomic.t; (* set by the front end on timeout/hangup *)
  deliver : Protocol.outcome -> unit; (* runs on the worker domain *)
}

type t = {
  qeval : Qeval.t;
  manager : M.t;
  nworkers : int;
  parallel : bool; (* we entered parallel mode and must exit it *)
  sweep_threshold : int; (* scratch nodes tolerated before a sweep; 0 = off *)
  jobs : job Queue.t;
  m : Mutex.t;
  c : Condition.t;
  mutable stopping : bool;
  mutable active : int; (* workers currently evaluating *)
  mutable domains : unit Domain.t list;
  requests : int Atomic.t;
  errors : int Atomic.t;
  dropped : int Atomic.t; (* cancelled before a worker picked them up *)
}

let is_error = function
  | Protocol.Reply (Json.Obj kvs) | Protocol.Quit (Json.Obj kvs) ->
    List.assoc_opt "ok" kvs = Some (Json.Bool false)
  | _ -> false

(* Called with [t.m] held and [t.active = 0]: no other domain can touch
   the manager (idle workers hold no node references; a worker needs
   the lock to dequeue its next job). *)
let maybe_sweep t =
  if
    t.sweep_threshold > 0 && M.frozen t.manager
    && M.live_nodes t.manager - M.frozen_live_nodes t.manager
       > t.sweep_threshold
  then M.frozen_sweep t.manager

let rec worker_loop t =
  Mutex.lock t.m;
  let rec wait () =
    if t.stopping && Queue.is_empty t.jobs then None
    else if Queue.is_empty t.jobs then begin
      Condition.wait t.c t.m;
      wait ()
    end
    else Some (Queue.pop t.jobs)
  in
  match wait () with
  | None -> Mutex.unlock t.m
  | Some job ->
    if Atomic.get job.cancelled then begin
      Atomic.incr t.dropped;
      Mutex.unlock t.m;
      worker_loop t
    end
    else begin
      t.active <- t.active + 1;
      Mutex.unlock t.m;
      let outcome =
        try Qeval.eval t.qeval job.request
        with e ->
          Protocol.Reply
            (Protocol.err
               (Protocol.request_id job.request)
               (Printf.sprintf "internal error: %s" (Printexc.to_string e)))
      in
      Atomic.incr t.requests;
      if is_error outcome then Atomic.incr t.errors;
      if not (Atomic.get job.cancelled) then job.deliver outcome;
      Mutex.lock t.m;
      t.active <- t.active - 1;
      if t.active = 0 then maybe_sweep t;
      Mutex.unlock t.m;
      worker_loop t
    end

let create ?(workers = 1) ?(sweep_threshold = 1 lsl 20) qeval =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let u = (Qeval.world qeval).Protocol.snap.Snapshot.u in
  let manager = U.manager u in
  if workers > 1 then begin
    if B.kind (U.backend u) <> `Incore then
      invalid_arg "Pool.create: multi-worker serving needs the incore backend";
    if not (U.frozen u) then
      invalid_arg "Pool.create: multi-worker serving needs a frozen universe"
  end;
  let parallel = workers > 1 in
  if parallel then M.enter_parallel manager;
  let t =
    {
      qeval;
      manager;
      nworkers = workers;
      parallel;
      sweep_threshold;
      jobs = Queue.create ();
      m = Mutex.create ();
      c = Condition.create ();
      stopping = false;
      active = 0;
      domains = [];
      requests = Atomic.make 0;
      errors = Atomic.make 0;
      dropped = Atomic.make 0;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t ~request ~cancelled ~deliver =
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    false
  end
  else begin
    Queue.push { request; cancelled; deliver } t.jobs;
    Condition.signal t.c;
    Mutex.unlock t.m;
    true
  end

let stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- [];
  if t.parallel then M.exit_parallel t.manager

let workers t = t.nworkers
let queue_depth t = Queue.length t.jobs
let requests t = Atomic.get t.requests
let errors t = Atomic.get t.errors

let stats_fields t : (string * Json.t) list =
  [
    ("workers", Json.Int t.nworkers);
    ("frozen", Json.Bool (M.frozen t.manager));
    ("frozen_sweeps", Json.Int (M.frozen_sweep_count t.manager));
    ("dropped", Json.Int (Atomic.get t.dropped));
  ]
