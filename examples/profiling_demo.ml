(* The browsable profiler (§4.3): run the points-to analysis with shape
   profiling on and emit the HTML / CSV / SQL reports.

   Run with:  dune exec examples/profiling_demo.exe
   Then open  _profile/pointsto.html  in a browser. *)

module Workload = Jedd_minijava.Workload
module Driver = Jedd_lang.Driver
module Interp = Jedd_lang.Interp
module Recorder = Jedd_profiler.Recorder
module Report = Jedd_profiler.Report
module U = Jedd_relation.Universe

let () =
  let p = Workload.generate (Workload.profile_named "compress") in
  let compiled =
    match
      Driver.compile
        [ ("PointsTo.jedd", Jedd_analyses.Suite.source_for p "Points-to Analysis") ]
    with
    | Ok c -> c
    | Error e ->
      prerr_endline (Driver.error_to_string e);
      exit 1
  in
  let inst = Driver.instantiate compiled in
  let recorder = Recorder.create () in
  Recorder.attach recorder (Interp.universe inst) ~level:U.Shapes;
  Jedd_analyses.Pointsto.load_facts inst p;
  (* reorder on, so the report's "Variable order" section has a pass
     (and the per-block attribution) to show *)
  Jedd_analyses.Pointsto.run ~reorder:true inst;
  Recorder.detach (Interp.universe inst);
  Printf.printf "recorded %d relational operations\n"
    (Recorder.total_operations recorder);
  print_endline "\nmost expensive operations (the profiler's overview view):";
  List.iteri
    (fun i (s : Recorder.summary) ->
      if i < 10 then
        Printf.printf "  %-10s %-18s %5dx  %8.3f ms  max %d nodes\n" s.op
          s.label s.executions s.total_millis s.max_result_nodes)
    (Recorder.summaries recorder);
  (try Unix.mkdir "_profile" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let engine = U.reorder_engine (Interp.universe inst) in
  let files =
    Report.write_files ~engine recorder ~dir:"_profile" ~prefix:"pointsto"
  in
  print_endline "\nreports written:";
  List.iter (fun f -> Printf.printf "  %s\n" f) files
