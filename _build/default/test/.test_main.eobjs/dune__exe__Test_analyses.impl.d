test/test_analyses.ml: Alcotest Jedd_analyses Jedd_lang Jedd_minijava List Sys
