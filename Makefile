.PHONY: all check test smoke bench-smoke release bench-json bench-json3 \
        bench-json5 bench-json6 bench-json7 bench-json8 bench-json9 \
        bench-json10 par-test serve-smoke load-smoke incr-smoke cost-smoke \
        mtbdd-smoke lint clean

all:
	dune build

# The full gate: build, unit/property tests, and the seconds-scale
# benchmark smoke run.  The smoke includes the reorder round-trip on a
# deliberately bad declaration order and exits non-zero on any manager
# invariant violation after reordering.
check:
	dune build
	dune runtest
	dune build @bench-smoke

test:
	dune runtest

# jeddlint over the shipped sources: the clean example and the five
# Figure 2 analyses must produce no warnings or errors (exit 0); the
# seeded-defect example must trip the checkers (exit non-zero).
lint:
	dune build bin/jeddc_main.exe bin/analyze_main.exe
	dune exec bin/jeddc_main.exe -- --lint=text examples/lint_clean.jedd
	dune exec bin/analyze_main.exe -- -b tiny --lint
	dune exec bin/analyze_main.exe -- -f examples/shapes.mjava --lint
	! dune exec bin/jeddc_main.exe -- --lint=text examples/lint_defects.jedd

smoke:
	dune build @bench-smoke

# Alias used by CI.
bench-smoke: smoke

# Optimised binaries (-O3 -unsafe -noassert); see the root `dune` file.
release:
	dune build --profile release

# Regenerate the machine-readable benchmark summaries committed at the
# repo root (BENCH_pr1.json, BENCH_pr2.json, BENCH_pr3.json).
bench-json:
	dune exec --profile release bench/main.exe -- json
	dune exec --profile release bench/main.exe -- json2

# In-core vs out-of-core (extmem) points-to comparison, including the
# capped-memory scenario that only the extmem backend survives.
bench-json3:
	dune exec --profile release bench/main.exe -- json3

# jeddd warm-start story: cold pipeline vs snapshot load vs per-query
# server latency; fails if warm-start is not at least 5x faster.
bench-json5:
	dune exec --profile release bench/main.exe -- json5

# Multi-core scaling curves (1/2/4/8 domains) for the points-to
# join/compose hot path and the combined five-analysis suite; fails if
# parallel results are not bit-identical to sequential, and (on hosts
# with >= 4 cpus) if neither curve reaches 2x at 4 domains.
bench-json6:
	dune exec --profile release bench/main.exe -- json6

# The parallel differential suite plus an end-to-end pipeline run at
# --jobs 4 verified against the reference analyses.  Used by CI.
par-test:
	dune build test/test_main.exe bin/analyze_main.exe
	dune exec test/test_main.exe -- test parallel
	dune exec bin/analyze_main.exe -- -b compress --jobs 4 --verify

# End-to-end daemon round trip: jeddd cold start, jeddq queries over
# the socket, snapshot save, warm restart, answers compared.
serve-smoke:
	sh scripts/serve_smoke.sh

# Serving under load, CI-sized: 50 concurrent TCP clients against a
# frozen 2-worker server over a warm snapshot; fails on any transport
# or application error, or if the result cache never hits.
load-smoke:
	dune exec bench/main.exe -- load

# Full serving benchmark: worker sweep at 1/2/4/8 with p50/p95/p99 +
# throughput + cache hit rate, frozen-vs-refcounted comparison, and a
# three-transport bit-identity gate.  Writes BENCH_pr7.json.
bench-json7:
	dune exec --profile release bench/main.exe -- json7

# Incremental evaluation, CI-sized: the quick halves of the incr and
# store suites — semi-naive vs naive differential, live-session edits
# checked tuple-for-tuple against from-scratch solves, and the
# differential-snapshot (delta) round trips.
incr-smoke:
	dune build test/test_main.exe
	dune exec test/test_main.exe -- test incr -q
	dune exec test/test_main.exe -- test store -q

# Cost per edit for the live incremental path vs from-scratch solves at
# 1/5/25 accumulated edits, plus the delta-size curve per generation;
# fails unless a single added call site re-solves >= 10x faster than
# from scratch with bit-identical relations.  Writes BENCH_pr8.json.
bench-json8:
	dune exec --profile release bench/main.exe -- json8

# Static cost model, CI-sized: the cost/lint unit suite (loop nesting,
# frequency weights, shape estimates, the JL201/JL202 golden snapshot,
# the weighted-assignment and hybrid-backend differentials) plus a tiny
# json9 run whose gates require bit-identical weighted results, a
# strict dynamic-replace reduction on the hoist microbenchmark, and a
# hybrid run that completes and beats extmem under the node cap.
cost-smoke:
	dune build test/test_main.exe bench/main.exe bin/jeddc_main.exe
	dune exec test/test_main.exe -- test cost -q
	! dune exec bin/jeddc_main.exe -- --lint=text examples/cost_defects.jedd
	JEDD_COST_BENCH=tiny JEDD_BACKEND_BENCH=tiny \
	  JEDD_BENCH_JSON9_PATH=_build/BENCH_pr9.smoke.json \
	  dune exec bench/main.exe -- json9

# Weighted domain assignment vs the unweighted CDCL baseline on the
# five analyses (bit-identical results required) plus the hybrid
# backend on the capped points-to workload.  Writes BENCH_pr9.json.
bench-json9:
	dune exec --profile release bench/main.exe -- json9

# Terminal-valued (mtbdd) backend, CI-sized: the mtbdd unit/property
# suite (apply/exist/replace brute-force differentials, bool round
# trips, weighted relations, weighted analyses), the extmem suite whose
# storm and 3-way differential now cover the mtbdd backend, an
# end-to-end mtbdd pipeline run, and a tiny json10 run whose gates
# require the mtbdd points-to support to be tuple-identical to the
# in-core result and the counting projection to match a boolean
# recount.
mtbdd-smoke:
	dune build test/test_main.exe bench/main.exe bin/analyze_main.exe
	dune exec test/test_main.exe -- test mtbdd -q
	dune exec test/test_main.exe -- test extmem -q
	dune exec bin/analyze_main.exe -- -b tiny --backend=mtbdd
	JEDD_MTBDD_BENCH=tiny \
	  JEDD_BENCH_JSON10_PATH=_build/BENCH_pr10.smoke.json \
	  dune exec bench/main.exe -- json10

# Weighted points-to (allocation counts) and the call-frequency
# weighted call graph on the mtbdd backend vs the boolean in-core
# baseline plus recount; projection bit-identity gated.  Writes
# BENCH_pr10.json.
bench-json10:
	dune exec --profile release bench/main.exe -- json10

clean:
	dune clean
