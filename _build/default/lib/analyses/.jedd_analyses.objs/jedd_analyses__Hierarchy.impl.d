lib/analyses/hierarchy.ml: Common Jedd_lang Jedd_minijava List
