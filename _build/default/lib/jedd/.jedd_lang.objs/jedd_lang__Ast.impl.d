lib/jedd/ast.ml: Format
