(* Differential snapshots.

   Snapshot payloads end with the relations list (see
   [Snapshot.write_payload]), and every relation entry is a
   self-delimiting Binio run.  That makes byte-level splicing possible:
   a delta keeps the result payload's header sections verbatim, the
   result's relation-name ordering, and the raw entry bytes of only the
   relations that changed; applying re-assembles the result payload
   from the base's entries plus the recorded ones and re-wraps it in
   the snapshot framing.  Because the splice is byte-exact, the result
   digest recorded at diff time doubles as an end-to-end correctness
   check at apply time.

   File layout mirrors snapshots:

     "JEDDDELT"  8-byte magic
     i64         format version
     i64         payload length in bytes
     16 bytes    MD5 of the payload
     payload     meta, base hex, result hex, prefix bytes,
                 relation-name order, changed (name, entry bytes) list *)

type t = {
  meta : (string * string) list;
  base : string;
  result : string;
  prefix : string;
  order : string list;
  changed : (string * string) list;
}

let corrupt fmt = Format.kasprintf (fun s -> raise (Snapshot.Corrupt s)) fmt

let magic = "JEDDDELT"
let format_version = 1
let hex_of data = Digest.to_hex (Digest.string data)

(* -- payload splitting --------------------------------------------------- *)

(* Split a (verified) snapshot payload into the header sections and the
   individual relation entries, as raw byte slices.  Reads just enough
   structure to find the boundaries; nothing is decoded into a
   universe. *)

let skip_dump r =
  ignore (Binio.read_int r);
  let nblocks = Binio.read_int r in
  if nblocks < 0 then corrupt "negative block count in relation dump";
  for _ = 1 to nblocks do
    ignore (Binio.read_int r);
    ignore (Binio.read_int_array r);
    ignore (Binio.read_int_array r)
  done

let split_payload payload =
  try
    let r = Binio.reader payload in
    let skip_string r = ignore (Binio.read_string r) in
    (* meta *)
    ignore
      (Binio.read_list r (fun r ->
           skip_string r;
           skip_string r));
    (* domains *)
    ignore
      (Binio.read_list r (fun r ->
           skip_string r;
           ignore (Binio.read_int r)));
    (* attrs *)
    ignore
      (Binio.read_list r (fun r ->
           skip_string r;
           skip_string r));
    (* physdoms *)
    ignore
      (Binio.read_list r (fun r ->
           skip_string r;
           ignore (Binio.read_int r);
           ignore (Binio.read_int_array r)));
    let prefix = String.sub payload 0 r.Binio.pos in
    let n = Binio.read_int r in
    if n < 0 then corrupt "negative relation count";
    let entries =
      List.init n (fun _ ->
          let start = r.Binio.pos in
          let name = Binio.read_string r in
          ignore
            (Binio.read_list r (fun r ->
                 skip_string r;
                 skip_string r));
          ignore (Binio.read_int r);
          skip_dump r;
          (name, String.sub payload start (r.Binio.pos - start)))
    in
    if not (Binio.at_end r) then corrupt "trailing bytes after snapshot body";
    (prefix, entries)
  with Binio.Truncated -> corrupt "snapshot is truncated"

let join_payload prefix entries =
  let w = Binio.writer () in
  Buffer.add_string w prefix;
  Binio.int_ w (List.length entries);
  List.iter (Buffer.add_string w) entries;
  Binio.contents w

(* -- diff / apply -------------------------------------------------------- *)

let diff ?(meta = []) ~base ~next () =
  let base_entries = snd (split_payload (Snapshot.payload_of_bytes base)) in
  let prefix, next_entries =
    split_payload (Snapshot.payload_of_bytes next)
  in
  let changed =
    List.filter
      (fun (name, bytes) ->
        match List.assoc_opt name base_entries with
        | Some old -> not (String.equal old bytes)
        | None -> true)
      next_entries
  in
  {
    meta;
    base = hex_of base;
    result = hex_of next;
    prefix;
    order = List.map fst next_entries;
    changed;
  }

let apply ~base d =
  let found = hex_of base in
  if found <> d.base then
    corrupt
      "delta does not apply here: recorded base %s, given snapshot hashes \
       to %s"
      d.base found;
  let _, base_entries = split_payload (Snapshot.payload_of_bytes base) in
  let entries =
    List.map
      (fun name ->
        match List.assoc_opt name d.changed with
        | Some bytes -> bytes
        | None -> (
          match List.assoc_opt name base_entries with
          | Some bytes -> bytes
          | None ->
            corrupt "delta references relation %s absent from its base" name))
      d.order
  in
  let out = Snapshot.bytes_of_payload (join_payload d.prefix entries) in
  let got = hex_of out in
  if got <> d.result then
    corrupt
      "delta replay does not reproduce its result: recorded %s, \
       reconstructed %s"
      d.result got;
  out

(* -- serialization ------------------------------------------------------- *)

let to_bytes d =
  let w = Binio.writer () in
  Binio.list_ w
    (fun w (k, v) ->
      Binio.string_ w k;
      Binio.string_ w v)
    d.meta;
  Binio.string_ w d.base;
  Binio.string_ w d.result;
  Binio.string_ w d.prefix;
  Binio.list_ w (fun w name -> Binio.string_ w name) d.order;
  Binio.list_ w
    (fun w (name, bytes) ->
      Binio.string_ w name;
      Binio.string_ w bytes)
    d.changed;
  let payload = Binio.contents w in
  let out = Binio.writer () in
  Buffer.add_string out magic;
  Binio.int_ out format_version;
  Binio.int_ out (String.length payload);
  Buffer.add_string out (Digest.string payload);
  Buffer.add_string out payload;
  Binio.contents out

let of_bytes data =
  try
    if String.length data < 8 || String.sub data 0 8 <> magic then
      corrupt "bad magic (not a jedd snapshot delta)";
    let r = Binio.reader ~pos:8 data in
    let version = Binio.read_int r in
    if version <> format_version then
      corrupt "unsupported delta format version %d (expected %d)" version
        format_version;
    let payload_len = Binio.read_int r in
    let digest =
      Binio.need r 16;
      let d = String.sub data r.Binio.pos 16 in
      r.Binio.pos <- r.Binio.pos + 16;
      d
    in
    if Binio.remaining r <> payload_len then
      corrupt "payload length mismatch (header says %d bytes, file has %d)"
        payload_len (Binio.remaining r);
    let payload = String.sub data r.Binio.pos payload_len in
    let found = Digest.string payload in
    if found <> digest then
      corrupt
        "checksum mismatch (delta body is damaged): header records %s, body \
         hashes to %s"
        (Digest.to_hex digest) (Digest.to_hex found);
    let r = Binio.reader payload in
    let meta =
      Binio.read_list r (fun r ->
          let k = Binio.read_string r in
          let v = Binio.read_string r in
          (k, v))
    in
    let base = Binio.read_string r in
    let result = Binio.read_string r in
    let prefix = Binio.read_string r in
    let order = Binio.read_list r Binio.read_string in
    let changed =
      Binio.read_list r (fun r ->
          let name = Binio.read_string r in
          let bytes = Binio.read_string r in
          (name, bytes))
    in
    if not (Binio.at_end r) then corrupt "trailing bytes after delta body";
    { meta; base; result; prefix; order; changed }
  with Binio.Truncated -> corrupt "delta is truncated"

(* -- chains -------------------------------------------------------------- *)

let kind data =
  if String.length data >= 8 then
    match String.sub data 0 8 with
    | "JEDDSNAP" -> `Snapshot
    | s when s = magic -> `Delta
    | _ -> `Unknown
  else `Unknown

let load_chain ?(max_depth = 64) cas key =
  let rec go depth key =
    if depth > max_depth then
      corrupt "delta chain through %s exceeds %d links" key max_depth;
    match Cas.get cas key with
    | None -> corrupt "object %s not found in store" key
    | Some data -> (
      match kind data with
      | `Snapshot -> data
      | `Delta ->
        let d = of_bytes data in
        apply ~base:(go (depth + 1) d.base) d
      | `Unknown ->
        corrupt "object %s is neither a snapshot nor a delta" key)
  in
  go 0 key
