(* Tests for the tooling around the core: the profiler (§4.3), the
   generated-Java emitter (Figure 1), Graphviz export, and multi-file
   compilation ("All 5 combined"-style builds). *)

module U = Jedd_relation.Universe
module Dom = Jedd_relation.Domain
module Phys = Jedd_relation.Physdom
module Attr = Jedd_relation.Attribute
module Schema = Jedd_relation.Schema
module R = Jedd_relation.Relation
module Recorder = Jedd_profiler.Recorder
module Report = Jedd_profiler.Report
module Driver = Jedd_lang.Driver

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let small_session () =
  let u = U.create () in
  let d = Dom.declare ~name:"D" ~size:8 () in
  let p1 = Phys.declare u ~name:"P1" ~bits:3 in
  let p2 = Phys.declare u ~name:"P2" ~bits:3 in
  let a = Attr.declare ~name:"a" ~domain:d in
  let b = Attr.declare ~name:"b" ~domain:d in
  let sch =
    Schema.make [ { Schema.attr = a; phys = p1 }; { Schema.attr = b; phys = p2 } ]
  in
  let rec_ = Recorder.create () in
  Recorder.attach rec_ u ~level:U.Shapes;
  let x = R.of_tuples u sch [ [ 1; 2 ]; [ 3; 4 ] ] in
  let y = R.of_tuples u sch [ [ 1; 2 ]; [ 5; 6 ] ] in
  let union = R.union ~label:"demo-union" x y in
  let _ = R.project_away ~label:"demo-project" union [ b ] in
  Recorder.detach u;
  rec_

let test_recorder_counts () =
  let rec_ = small_session () in
  Alcotest.(check bool) "recorded some operations" true
    (Recorder.total_operations rec_ >= 2);
  let summaries = Recorder.summaries rec_ in
  Alcotest.(check bool) "union summarised" true
    (List.exists
       (fun (s : Recorder.summary) -> s.op = "union" && s.executions = 1)
       summaries);
  Alcotest.(check bool) "tuples recorded" true
    (List.exists
       (fun (s : Recorder.summary) ->
         s.op = "union" && s.total_result_tuples = 3)
       summaries)

let test_recorder_shapes () =
  let rec_ = small_session () in
  Alcotest.(check bool) "shape captured" true
    (List.exists
       (fun (r : Recorder.row) -> r.event.U.shapes <> None)
       (Recorder.rows rec_))

let test_html_report () =
  let rec_ = small_session () in
  let html = Report.to_html rec_ in
  Alcotest.(check bool) "has overview header" true
    (contains html "Jedd profiler report");
  Alcotest.(check bool) "mentions union" true (contains html "union");
  Alcotest.(check bool) "has SVG shape chart" true (contains html "<svg");
  Alcotest.(check bool) "escapes labels" true
    (not (contains html "<demo"))

let test_html_order_section () =
  let u = U.create () in
  let d = Dom.declare ~name:"D" ~size:8 () in
  let p1 = Phys.declare u ~name:"P1" ~bits:3 in
  let p2 = Phys.declare u ~name:"P2" ~bits:3 in
  let a = Attr.declare ~name:"a" ~domain:d in
  let b = Attr.declare ~name:"b" ~domain:d in
  let sch =
    Schema.make [ { Schema.attr = a; phys = p1 }; { Schema.attr = b; phys = p2 } ]
  in
  let rec_ = Recorder.create () in
  Recorder.attach rec_ u ~level:U.Counts;
  let x = R.of_tuples u sch [ [ 1; 2 ]; [ 3; 4 ] ] in
  U.reorder ~trigger:"test" u;
  let _ = R.size x in
  Recorder.detach u;
  let html = Report.to_html ~engine:(U.reorder_engine u) rec_ in
  Alcotest.(check bool) "has order section" true
    (contains html "Variable order");
  Alcotest.(check bool) "names the blocks" true (contains html "P1");
  Alcotest.(check bool) "lists the pass" true (contains html "sift")

let test_csv_report () =
  let rec_ = small_session () in
  let csv = Report.to_csv rec_ in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check bool) "header plus one line per op" true
    (List.length lines = Recorder.total_operations rec_ + 1);
  Alcotest.(check bool) "header columns" true
    (contains (List.hd lines) "seq,op,label,millis")

let test_sql_report () =
  let rec_ = small_session () in
  let sql = Report.to_sql rec_ in
  Alcotest.(check bool) "creates table" true
    (contains sql "CREATE TABLE IF NOT EXISTS jedd_ops");
  Alcotest.(check bool) "inserts rows" true
    (contains sql "INSERT INTO jedd_ops VALUES (0,")

let test_clear () =
  let rec_ = small_session () in
  Recorder.clear rec_;
  Alcotest.(check int) "cleared" 0 (Recorder.total_operations rec_)

(* ---------------- generated Java (Figure 1) ---------------- *)

let fig4_like =
  "domain Type 8;\n\
   domain Signature 8;\n\
   attribute type : Type;\n\
   attribute tgttype : Type;\n\
   attribute signature : Signature;\n\
   physdom T1;\nphysdom T2;\nphysdom S1;\n\
   class Demo {\n\
   \  <type:T1, signature:S1> declares;\n\
   \  <tgttype:T2, signature:S1> wanted;\n\
   \  public void go( <tgttype, signature> input ) {\n\
   \    wanted = input;\n\
   \    <tgttype:T2, signature:S1, type:T1> found =\n\
   \      wanted{signature} >< declares{signature};\n\
   \    wanted -= (type=>) found;\n\
   \  }\n\
   }\n"

let test_emit_java_structure () =
  match Driver.compile [ ("Demo.jedd", fig4_like) ] with
  | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)
  | Ok c ->
    let java = Jedd_lang.Emit_java.emit_program c in
    Alcotest.(check bool) "class header" true
      (contains java "public class Demo");
    Alcotest.(check bool) "fields become containers" true
      (contains java "RelationContainer Demo_declares");
    Alcotest.(check bool) "layouts are spelled out" true
      (contains java "<type:T1, signature:S1>");
    Alcotest.(check bool) "join call emitted" true
      (contains java "Jedd.v().join(");
    Alcotest.(check bool) "projection emitted" true
      (contains java "Jedd.v().project(");
    Alcotest.(check bool) "method signature" true
      (contains java "public void go(final RelationContainer Demo_go_input)")

let test_emit_java_replace_sites () =
  (* A layout change across an assignment must show up as an explicit
     replace in the generated code. *)
  let src =
    "domain Type 8;\n\
     attribute type : Type;\n\
     physdom TA;\nphysdom TB;\n\
     class Rep {\n\
     \  <type:TA> a;\n\
     \  <type:TB> b;\n\
     \  public void go() {\n\
     \    b = a;\n\
     \  }\n\
     }\n"
  in
  match Driver.compile [ ("Rep.jedd", src) ] with
  | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)
  | Ok c ->
    let java = Jedd_lang.Emit_java.emit_method c "Rep.go" in
    Alcotest.(check bool) "replace emitted for TA->TB" true
      (contains java "Jedd.v().replace(")

(* ---------------- multi-file compilation ---------------- *)

let test_multi_file_compile () =
  let decls =
    "domain Type 8;\nattribute type : Type;\nphysdom TA;\n"
  in
  let file1 = "class A { <type:TA> fa; public void ma() { fa = fa | fa; } }\n" in
  let file2 = "class B { <type:TA> fb; public void mb() { fb = fa; } }\n" in
  match
    Driver.compile
      [ ("decls.jedd", decls); ("A.jedd", file1); ("B.jedd", file2) ]
  with
  | Ok c ->
    Alcotest.(check int) "two classes" 2
      (List.length c.Driver.tprog.Jedd_lang.Tast.classes)
  | Error e -> Alcotest.failf "multi-file: %s" (Driver.error_to_string e)

(* ---------------- Graphviz / shapes ---------------- *)

let test_dot_export () =
  let m = Jedd_bdd.Manager.create () in
  let v0 = Jedd_bdd.Manager.new_var m in
  let v1 = Jedd_bdd.Manager.new_var m in
  let f =
    Jedd_bdd.Ops.band m (Jedd_bdd.Manager.var m v0) (Jedd_bdd.Manager.var m v1)
  in
  let dot = Jedd_bdd.Dot.to_dot m f in
  Alcotest.(check bool) "digraph" true (contains dot "digraph bdd");
  Alcotest.(check bool) "has x0" true (contains dot "x0");
  Alcotest.(check bool) "terminal boxes" true (contains dot "shape=box")

let test_ascii_shape () =
  let m = Jedd_bdd.Manager.create () in
  let v0 = Jedd_bdd.Manager.new_var m in
  let _ = Jedd_bdd.Manager.new_var m in
  let f = Jedd_bdd.Manager.var m v0 in
  let out = Format.asprintf "%a" (fun ppf -> Jedd_bdd.Dot.print_ascii_shape ppf m) f in
  Alcotest.(check bool) "bar drawn" true (contains out "#")

let suite =
  [
    Alcotest.test_case "recorder counts" `Quick test_recorder_counts;
    Alcotest.test_case "recorder shapes" `Quick test_recorder_shapes;
    Alcotest.test_case "html report" `Quick test_html_report;
    Alcotest.test_case "html order section" `Quick test_html_order_section;
    Alcotest.test_case "csv report" `Quick test_csv_report;
    Alcotest.test_case "sql report" `Quick test_sql_report;
    Alcotest.test_case "recorder clear" `Quick test_clear;
    Alcotest.test_case "emit java structure" `Quick test_emit_java_structure;
    Alcotest.test_case "emit java replace sites" `Quick
      test_emit_java_replace_sites;
    Alcotest.test_case "multi-file compile" `Quick test_multi_file_compile;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "ascii shape" `Quick test_ascii_shape;
  ]
