lib/jedd/driver.mli: Ast Constraints Encode Interp Tast
