let () =
  Alcotest.run "jedd"
    [ ("bdd", Test_bdd.suite); ("parallel", Test_parallel.suite);
      ("sat", Test_sat.suite);
      ("relation", Test_relation.suite); ("jedd", Test_jedd.suite); ("analyses", Test_analyses.suite); ("zdd", Test_zdd.suite); ("tools", Test_tools.suite); ("ir", Test_ir.suite);
      ("reorder", Test_reorder.suite); ("extmem", Test_extmem.suite);
      ("mtbdd", Test_mtbdd.suite);
      ("lint", Test_lint.suite); ("cost", Test_cost.suite);
      ("store", Test_store.suite);
      ("server", Test_server.suite); ("json-fuzz", Test_json_fuzz.suite);
      ("serve", Test_serve.suite); ("incr", Test_incr.suite) ]
