module U = Jedd_relation.Universe

type row = { seq : int; event : U.op_event }

type summary = {
  op : string;
  label : string;
  executions : int;
  total_millis : float;
  max_result_nodes : int;
  total_result_tuples : int;
  cache_hits : int;
  cache_misses : int;
  gcs : int;
  gc_millis : float;
  reorders : int;
  reorder_swaps : int;
  reorder_millis : float;
  spill_runs : int;
  spilled_bytes : int;
  io_millis : float;
  mt_cache_hits : int;
  mt_cache_misses : int;
  mt_terminals : int;
      (* high-water mark of distinct terminal values over the executions *)
}

(* One recorder may receive events from several domains at once (e.g.
   [Suite.run_combined ~jobs]), so the event list is mutex-protected. *)
type t = { lock : Mutex.t; mutable events : row list; mutable next_seq : int }

let create () = { lock = Mutex.create (); events = []; next_seq = 0 }

let record t event =
  Mutex.lock t.lock;
  t.events <- { seq = t.next_seq; event } :: t.events;
  t.next_seq <- t.next_seq + 1;
  Mutex.unlock t.lock

let attach t u ~level =
  U.set_profile_level u level;
  U.set_on_op u (Some (record t))

let detach u =
  U.set_profile_level u U.Off;
  U.set_on_op u None

let rows t =
  Mutex.lock t.lock;
  let r = List.rev t.events in
  Mutex.unlock t.lock;
  r

let total_operations t = t.next_seq

let clear t =
  Mutex.lock t.lock;
  t.events <- [];
  t.next_seq <- 0;
  Mutex.unlock t.lock

let summaries t =
  Mutex.lock t.lock;
  let events = t.events in
  Mutex.unlock t.lock;
  let table = Hashtbl.create 32 in
  List.iter
    (fun { event = e; _ } ->
      let key = (e.U.op, e.U.label) in
      let current =
        match Hashtbl.find_opt table key with
        | Some s -> s
        | None ->
          {
            op = e.U.op;
            label = e.U.label;
            executions = 0;
            total_millis = 0.0;
            max_result_nodes = 0;
            total_result_tuples = 0;
            cache_hits = 0;
            cache_misses = 0;
            gcs = 0;
            gc_millis = 0.0;
            reorders = 0;
            reorder_swaps = 0;
            reorder_millis = 0.0;
            spill_runs = 0;
            spilled_bytes = 0;
            io_millis = 0.0;
            mt_cache_hits = 0;
            mt_cache_misses = 0;
            mt_terminals = 0;
          }
      in
      let hits, misses, gcs, gc_millis, reorders, rswaps, rmillis =
        match e.U.bdd with
        | Some d ->
          ( d.U.cache_hits,
            d.U.cache_misses,
            d.U.gcs,
            d.U.gc_millis,
            d.U.reorders,
            d.U.reorder_swaps,
            d.U.reorder_millis )
        | None -> (0, 0, 0, 0.0, 0, 0, 0.0)
      in
      let sruns, sbytes, io_ms =
        match e.U.bdd with
        | Some d -> (d.U.spill_runs, d.U.spilled_bytes, d.U.io_millis)
        | None -> (0, 0, 0.0)
      in
      let mt_hits, mt_misses, mt_terms =
        match e.U.bdd with
        | Some d -> (d.U.mt_cache_hits, d.U.mt_cache_misses, d.U.mt_terminals)
        | None -> (0, 0, 0)
      in
      Hashtbl.replace table key
        {
          current with
          executions = current.executions + 1;
          total_millis = current.total_millis +. e.U.millis;
          max_result_nodes = max current.max_result_nodes e.U.result_nodes;
          total_result_tuples =
            current.total_result_tuples + e.U.result_tuples;
          cache_hits = current.cache_hits + hits;
          cache_misses = current.cache_misses + misses;
          gcs = current.gcs + gcs;
          gc_millis = current.gc_millis +. gc_millis;
          reorders = current.reorders + reorders;
          reorder_swaps = current.reorder_swaps + rswaps;
          reorder_millis = current.reorder_millis +. rmillis;
          spill_runs = current.spill_runs + sruns;
          spilled_bytes = current.spilled_bytes + sbytes;
          io_millis = current.io_millis +. io_ms;
          mt_cache_hits = current.mt_cache_hits + mt_hits;
          mt_cache_misses = current.mt_cache_misses + mt_misses;
          mt_terminals = max current.mt_terminals mt_terms;
        })
    events;
  Hashtbl.fold (fun _ s acc -> s :: acc) table []
  |> List.sort (fun a b -> compare b.total_millis a.total_millis)

(* The [parallelism] counter section: pool width and fork/steal traffic
   (zero when no pool is attached), plus the manager's multi-domain
   bookkeeping — domains that have touched it in parallel mode,
   stop-the-world phases, barrier waits, and allocation-chunk refills.
   Per-domain operation-cache slots are reported individually while
   parallel mode is active (they merge into the base counters on
   [exit_parallel]). *)
let parallelism_stats u =
  let module U = Jedd_relation.Universe in
  let module M = Jedd_bdd.Manager in
  let m = U.manager u in
  let s = M.par_stats m in
  let forks, steals =
    match Jedd_relation.Backend.pool (U.backend u) with
    | None -> (0, 0)
    | Some pool -> Jedd_bdd.Par.stats pool
  in
  [
    ("parallel_active", if s.M.par_active then 1.0 else 0.0);
    ("parallel_jobs", float_of_int (U.jobs u));
    ("parallel_domains_used", float_of_int s.M.par_domains);
    ("parallel_registered", float_of_int s.M.par_registered);
    ("parallel_forks", float_of_int forks);
    ("parallel_steals", float_of_int steals);
    ("parallel_stw_sections", float_of_int s.M.par_stw_sections);
    ("parallel_barrier_waits", float_of_int s.M.par_barrier_waits);
    ("parallel_chunk_refills", float_of_int s.M.par_chunk_refills);
  ]
  @ (Array.to_list (M.slot_cache_stats m)
    |> List.concat_map (fun (slot, h, ms, st, ev) ->
           [
             (Printf.sprintf "slot%d_cache_hits" slot, float_of_int h);
             (Printf.sprintf "slot%d_cache_misses" slot, float_of_int ms);
             (Printf.sprintf "slot%d_cache_stores" slot, float_of_int st);
             (Printf.sprintf "slot%d_cache_evictions" slot, float_of_int ev);
           ]))

(* Lifetime counter snapshot of a universe's BDD layer, as flat
   (name, value) pairs: the cache/GC/growth/reorder counters of the
   manager plus the spill/I-O counters of an extmem backend.  This is
   the payload of the query server's [stats] verb and of the bench
   JSON reports, so the numbers users see in both places are the same
   counters the profiler attributes per-operation above. *)
let runtime_stats u =
  let module U = Jedd_relation.Universe in
  let module M = Jedd_bdd.Manager in
  let m = U.manager u in
  let hits, misses, evictions = M.cache_totals m in
  let spill_runs, spilled_bytes, pq_peak_bytes, io_millis =
    match Jedd_relation.Backend.store (U.backend u) with
    | None -> (0, 0, 0, 0.0)
    | Some st ->
      ( Jedd_extmem.Store.spill_runs st,
        Jedd_extmem.Store.spilled_bytes st,
        Jedd_extmem.Store.pq_peak_bytes st,
        Jedd_extmem.Store.io_millis st )
  in
  let mt_hits, mt_misses, mt_terminals, mt_live, mt_peak =
    match Jedd_relation.Backend.mt_store (U.backend u) with
    | None -> (0, 0, 0, 0, 0)
    | Some st ->
      let module Mt = Jedd_mtbdd.Mtbdd in
      let h, ms, _ev = Mt.cache_totals st in
      (h, ms, Mt.distinct_terminals st, Mt.live_nodes st, Mt.peak_nodes st)
  in
  [
    ( "backend",
      float_of_int
        (match U.backend_kind u with
        | `Incore -> 0
        | `Extmem -> 1
        | `Hybrid -> 2
        | `Mtbdd -> 3) );
    ("live_nodes", float_of_int (M.live_nodes m));
    ("peak_nodes", float_of_int (M.peak_nodes m));
    ("num_vars", float_of_int (M.num_vars m));
    ("cache_hits", float_of_int hits);
    ("cache_misses", float_of_int misses);
    ("cache_evictions", float_of_int evictions);
    ("gcs", float_of_int (M.gc_count m));
    ("gc_millis", M.gc_millis m);
    ("grows", float_of_int (M.grow_count m));
    ("grow_millis", M.grow_millis m);
    ("reorders", float_of_int (M.reorder_count m));
    ("reorder_swaps", float_of_int (M.swap_count m));
    ("reorder_millis", M.reorder_millis m);
    ("spill_runs", float_of_int spill_runs);
    ("spilled_bytes", float_of_int spilled_bytes);
    ("pq_peak_bytes", float_of_int pq_peak_bytes);
    ("io_millis", io_millis);
    ("mt_cache_hits", float_of_int mt_hits);
    ("mt_cache_misses", float_of_int mt_misses);
    ("mt_distinct_terminals", float_of_int mt_terminals);
    ("mt_live_nodes", float_of_int mt_live);
    ("mt_peak_nodes", float_of_int mt_peak);
  ]
  @ parallelism_stats u
