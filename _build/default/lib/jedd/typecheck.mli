(** Semantic analysis: name resolution and the static type rules of the
    paper's Figure 6.

    Produces a {!Tast.tprogram} where every relational expression is
    annotated with its inferred schema (attribute set) and the physical
    domains the programmer specified, ready for the assignment stage. *)

exception Error of string * Ast.pos

val check : Ast.program -> Tast.tprogram
(** Raises {!Error} with the offending position when a Figure 6 rule is
    violated, a name is unresolved, or a declaration is inconsistent. *)
