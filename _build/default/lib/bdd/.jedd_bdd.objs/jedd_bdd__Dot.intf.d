lib/bdd/dot.mli: Format Manager
