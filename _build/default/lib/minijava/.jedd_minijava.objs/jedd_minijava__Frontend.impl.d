lib/minijava/frontend.ml: Array Fun Hashtbl List Option Printf Program String
