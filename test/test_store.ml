(* Tests for the persistent relation store: levelized dumps, the binary
   snapshot format, the content-addressed store, and corrupt-file
   rejection.  Round-trips are checked on BOTH backends and across
   backends (a snapshot saved in-core must load on extmem and vice
   versa), on random relations and on a real analysis fixed point. *)

module M = Jedd_bdd.Manager
module Lv = Jedd_bdd.Levelized
module U = Jedd_relation.Universe
module B = Jedd_relation.Backend
module R = Jedd_relation.Relation
module Dom = Jedd_relation.Domain
module Attr = Jedd_relation.Attribute
module Phys = Jedd_relation.Physdom
module Schema = Jedd_relation.Schema
module Snapshot = Jedd_store.Snapshot
module Cas = Jedd_store.Cas
module Delta = Jedd_store.Delta
module Suite = Jedd_analyses.Suite
module Workload = Jedd_minijava.Workload

let kinds = [ ("incore", `Incore); ("extmem", `Extmem) ]

(* A small two-relation world over three domains, with tuples drawn
   from a seeded PRNG so failures reproduce. *)
let build_world ?(seed = 42) ?(n = 40) kind =
  let u = U.create ~backend:kind () in
  let d1 = Dom.declare ~name:"D1" ~size:13 () in
  let d2 = Dom.declare ~name:"D2" ~size:7 () in
  let a = Attr.declare ~name:"a" ~domain:d1 in
  let b = Attr.declare ~name:"b" ~domain:d2 in
  let c = Attr.declare ~name:"c" ~domain:d1 in
  let p1 = Phys.declare u ~name:"P1" ~bits:4 in
  let p2 = Phys.declare u ~name:"P2" ~bits:3 in
  let p3 = Phys.declare u ~name:"P3" ~bits:5 in
  let sch_ab = Schema.make [ { Schema.attr = a; phys = p1 }; { Schema.attr = b; phys = p2 } ] in
  let sch_c = Schema.make [ { Schema.attr = c; phys = p3 } ] in
  let rng = Random.State.make [| seed |] in
  let tuples_ab =
    List.init n (fun _ ->
        [ Random.State.int rng 13; Random.State.int rng 7 ])
    |> List.sort_uniq compare
  in
  let tuples_c =
    List.init (n / 2) (fun _ -> [ Random.State.int rng 13 ])
    |> List.sort_uniq compare
  in
  let r_ab = R.of_tuples u sch_ab tuples_ab in
  let r_c = R.of_tuples u sch_c tuples_c in
  {
    Snapshot.u;
    meta = [ ("kind", "test-world") ];
    domains = [ ("D1", d1); ("D2", d2) ];
    attrs = [ ("a", a); ("b", b); ("c", c) ];
    physdoms = [ ("P1", p1); ("P2", p2); ("P3", p3) ];
    relations = [ ("W.ab", r_ab); ("W.c", r_c) ];
  }

let check_same_relations snap snap' =
  List.iter2
    (fun (name, r) (name', r') ->
      Alcotest.(check string) "relation name" name name';
      Alcotest.(check int) (name ^ " size") (R.size r) (R.size r');
      Alcotest.(check (list (list int))) (name ^ " tuples") (R.tuples r)
        (R.tuples r'))
    snap.Snapshot.relations snap'.Snapshot.relations

(* -- levelized dumps ---------------------------------------------------- *)

let test_levelized_roundtrip () =
  List.iter
    (fun (kname, kind) ->
      let world = build_world kind in
      let backend = U.backend world.Snapshot.u in
      List.iter
        (fun (name, r) ->
          let dump = B.export_levelized backend (R.root r) in
          Lv.validate dump;
          let root = B.import_levelized backend dump in
          let r' = R.of_root world.Snapshot.u (R.schema r) root in
          B.delref backend root;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s nodecount" kname name)
            (B.nodecount backend (R.root r))
            (B.nodecount backend (R.root r'));
          Alcotest.(check (list (list int)))
            (Printf.sprintf "%s/%s tuples" kname name)
            (R.tuples r) (R.tuples r'))
        world.Snapshot.relations)
    kinds

let test_levelized_terminal () =
  let m = M.create () in
  let d = Lv.of_manager m M.zero in
  Alcotest.(check int) "zero root" Lv.t_false d.Lv.root;
  let n = Lv.to_manager m d in
  Alcotest.(check int) "zero back" M.zero n;
  M.delref m n;
  let d1 = Lv.of_manager m M.one in
  Alcotest.(check int) "one root" Lv.t_true d1.Lv.root

let test_levelized_malformed () =
  let bad =
    [
      (* lo = hi: violates reducedness *)
      { Lv.blocks = [| (0, [| Lv.t_false |], [| Lv.t_false |]) |]; root = Lv.pack 0 0 };
      (* child above parent *)
      {
        Lv.blocks =
          [|
            (0, [| Lv.t_false |], [| Lv.pack 1 0 |]);
            (1, [| Lv.pack 0 0 |], [| Lv.t_true |]);
          |];
        root = Lv.pack 0 0;
      };
      (* dangling child index *)
      { Lv.blocks = [| (0, [| Lv.t_false |], [| Lv.pack 3 7 |]) |]; root = Lv.pack 0 0 };
      (* root out of range *)
      { Lv.blocks = [| (0, [| Lv.t_false |], [| Lv.t_true |]) |]; root = Lv.pack 0 9 };
      (* unordered levels *)
      {
        Lv.blocks =
          [|
            (2, [| Lv.t_false |], [| Lv.t_true |]);
            (1, [| Lv.t_false |], [| Lv.t_true |]);
          |];
        root = Lv.pack 2 0;
      };
    ]
  in
  List.iter
    (fun d ->
      match Lv.validate d with
      | () -> Alcotest.fail "malformed dump accepted"
      | exception Lv.Malformed _ -> ())
    bad

(* -- snapshot round-trips ------------------------------------------------ *)

let test_snapshot_roundtrip () =
  List.iter
    (fun (save_name, save_kind) ->
      List.iter
        (fun (load_name, load_kind) ->
          let world = build_world save_kind in
          let bytes = Snapshot.to_bytes world in
          let snap = Snapshot.of_bytes ~backend:load_kind bytes in
          Alcotest.(check (option string))
            (Printf.sprintf "%s->%s meta" save_name load_name)
            (Some "test-world")
            (Snapshot.meta_value snap "kind");
          check_same_relations world snap)
        kinds)
    kinds

let test_snapshot_reordered () =
  (* a snapshot taken after heavy reordering must still round-trip *)
  let world = build_world `Incore in
  let u = world.Snapshot.u in
  Jedd_reorder.Reorder.random_swaps ~seed:7 (U.reorder_engine u) 50;
  let before = List.map (fun (n, r) -> (n, R.tuples r)) world.Snapshot.relations in
  let snap = Snapshot.of_bytes (Snapshot.to_bytes world) in
  List.iter2
    (fun (n, tuples) (n', r') ->
      Alcotest.(check string) "name" n n';
      Alcotest.(check (list (list int))) (n ^ " tuples after reorder") tuples
        (R.tuples r'))
    before snap.Snapshot.relations

let test_snapshot_analysis_fixed_point () =
  let p = Workload.generate Workload.tiny in
  let inst, res = Suite.run_combined p in
  let world = Suite.snapshot ~meta:[ ("workload", "tiny") ] inst in
  List.iter
    (fun (_, kind) ->
      let snap = Snapshot.of_bytes ~backend:kind (Snapshot.to_bytes world) in
      let get name =
        match Snapshot.find_relation snap name with
        | Some r -> R.tuples r
        | None -> Alcotest.fail ("missing relation " ^ name)
      in
      Alcotest.(check (list (list int))) "pt" res.Suite.pt (get "PointsTo.pt");
      Alcotest.(check (list (list int)))
        "subtypes" res.Suite.subtypes (get "Hierarchy.subtypes");
      Alcotest.(check (list (list int)))
        "resolved" res.Suite.resolved (get "VirtualCalls.resolved");
      Alcotest.(check (list (list int)))
        "reachable" res.Suite.reachable (get "CallGraph.reachable");
      (* suffix lookup *)
      Alcotest.(check bool) "suffix alias" true
        (Snapshot.find_relation snap "pt" <> None))
    kinds

let test_snapshot_qcheck =
  QCheck.Test.make ~count:25 ~name:"random tuple sets round-trip"
    QCheck.(pair small_nat (pair small_nat bool))
    (fun (seed, (n, extmem)) ->
      let kind = if extmem then `Extmem else `Incore in
      let world = build_world ~seed ~n:(1 + n) kind in
      let snap = Snapshot.of_bytes (Snapshot.to_bytes world) in
      List.for_all2
        (fun (_, r) (_, r') ->
          R.size r = R.size r' && R.tuples r = R.tuples r')
        world.Snapshot.relations snap.Snapshot.relations)

(* -- corrupt-file rejection ---------------------------------------------- *)

let expect_corrupt what bytes =
  match Snapshot.of_bytes bytes with
  | _ -> Alcotest.fail (what ^ ": corrupt snapshot accepted")
  | exception Snapshot.Corrupt _ -> ()

let test_corrupt_rejection () =
  let world = build_world `Incore in
  let good = Snapshot.to_bytes world in
  (* sanity: the pristine bytes load *)
  ignore (Snapshot.of_bytes good);
  expect_corrupt "empty" "";
  expect_corrupt "bad magic" ("XXXXXXXX" ^ String.sub good 8 (String.length good - 8));
  (* wrong version: bump byte 8 *)
  let bv = Bytes.of_string good in
  Bytes.set bv 8 (Char.chr (Char.code (Bytes.get bv 8) + 1));
  expect_corrupt "version skew" (Bytes.to_string bv);
  (* truncations at every region boundary and mid-payload *)
  List.iter
    (fun len -> expect_corrupt "truncated" (String.sub good 0 len))
    [ 4; 8; 15; 23; 39; String.length good / 2; String.length good - 1 ];
  (* flip one payload byte: must fail the checksum *)
  let flip = Bytes.of_string good in
  let pos = 40 + ((String.length good - 40) / 2) in
  Bytes.set flip pos (Char.chr (Char.code (Bytes.get flip pos) lxor 0xff));
  expect_corrupt "bit flip" (Bytes.to_string flip);
  (* trailing garbage changes the length/digest relation *)
  expect_corrupt "trailing bytes" (good ^ "garbage")

let test_save_load_file () =
  let world = build_world `Incore in
  let path = Filename.temp_file "jedd_snap" ".snap" in
  Snapshot.save_file path world;
  let snap = Snapshot.load_file path in
  check_same_relations world snap;
  Sys.remove path

(* -- content-addressed store --------------------------------------------- *)

let test_cas () =
  let root = Filename.temp_file "jedd_cas" "" in
  Sys.remove root;
  let cas = Cas.open_ root in
  let world = build_world `Incore in
  let bytes = Snapshot.to_bytes world in
  let hex = Cas.put cas bytes in
  Alcotest.(check string) "idempotent put" hex (Cas.put cas bytes);
  Cas.tag cas "tiny" hex;
  Alcotest.(check (option string)) "ref" (Some hex) (Cas.read_ref cas "tiny");
  (* load through ref name, digest, and digest prefix *)
  List.iter
    (fun key ->
      match Cas.get cas key with
      | None -> Alcotest.fail ("unresolvable key " ^ key)
      | Some data -> check_same_relations world (Snapshot.of_bytes data))
    [ "tiny"; hex; String.sub hex 0 8 ];
  Alcotest.(check (option string)) "missing ref" None (Cas.get cas "nope");
  Alcotest.(check int) "one object" 1 (List.length (Cas.objects cas))

(* -- differential snapshots ---------------------------------------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let hex_of s = Digest.to_hex (Digest.string s)
let checkb = Alcotest.(check bool)

let test_delta_diff_apply () =
  let base = Snapshot.to_bytes (build_world ~seed:5 `Incore) in
  (* serialization is deterministic, so identical worlds diff empty *)
  let same = Snapshot.to_bytes (build_world ~seed:5 `Incore) in
  Alcotest.(check string) "deterministic serialization" (hex_of base)
    (hex_of same);
  let d0 = Delta.diff ~base ~next:same () in
  Alcotest.(check int) "no changes between identical snapshots" 0
    (List.length d0.Delta.changed);
  Alcotest.(check string) "empty delta applies to identity" (hex_of base)
    (hex_of (Delta.apply ~base d0));
  (* drop one relation's tuples: exactly that entry is recorded *)
  let w2 = build_world ~seed:5 `Incore in
  let rc = List.assoc "W.c" w2.Snapshot.relations in
  let rc' = R.empty w2.Snapshot.u (R.schema rc) in
  let w2 =
    {
      w2 with
      Snapshot.relations =
        [ ("W.ab", List.assoc "W.ab" w2.Snapshot.relations); ("W.c", rc') ];
    }
  in
  let next = Snapshot.to_bytes w2 in
  let d = Delta.diff ~meta:[ ("edit", "clear W.c") ] ~base ~next () in
  Alcotest.(check (list string)) "only W.c changed" [ "W.c" ]
    (List.map fst d.Delta.changed);
  Alcotest.(check (list string)) "order covers every relation"
    [ "W.ab"; "W.c" ] d.Delta.order;
  (* file round-trip, then replay: byte-identical to the real next *)
  let d' = Delta.of_bytes (Delta.to_bytes d) in
  checkb "delta round-trips" true (d = d');
  let out = Delta.apply ~base d' in
  Alcotest.(check string) "replay is byte-identical" (hex_of next)
    (hex_of out);
  check_same_relations w2 (Snapshot.of_bytes out);
  (* replaying onto the wrong base fails with both digests named *)
  match Delta.apply ~base:next d' with
  | _ -> Alcotest.fail "wrong base accepted"
  | exception Snapshot.Corrupt msg ->
    checkb "recorded base digest in message" true (contains msg d.Delta.base);
    checkb "found digest in message" true (contains msg (hex_of next))

let test_delta_chain () =
  let root = Filename.temp_file "jedd_cas" "" in
  Sys.remove root;
  let cas = Cas.open_ root in
  let mk seed = Snapshot.to_bytes (build_world ~seed `Incore) in
  let a = mk 1 and b = mk 2 and c = mk 3 in
  ignore (Cas.put cas a);
  Cas.tag cas "main" (Cas.put cas (Delta.to_bytes (Delta.diff ~base:a ~next:b ())));
  Alcotest.(check string) "delta ref replays to the next generation"
    (hex_of b)
    (hex_of (Delta.load_chain cas "main"));
  ignore (Cas.put cas b);
  Cas.tag cas "main" (Cas.put cas (Delta.to_bytes (Delta.diff ~base:b ~next:c ())));
  Alcotest.(check string) "second publish replays too" (hex_of c)
    (hex_of (Delta.load_chain cas "main"));
  (* full snapshot objects pass through the same entry point *)
  Alcotest.(check string) "full object loads unchanged" (hex_of a)
    (hex_of (Delta.load_chain cas (hex_of a)));
  checkb "replayed bytes rebuild a universe" true
    (Snapshot.of_bytes (Delta.load_chain cas "main") |> fun s ->
     List.length s.Snapshot.relations = 2);
  (* a dangling base fails cleanly *)
  Cas.tag cas "orphan"
    (Cas.put cas (Delta.to_bytes (Delta.diff ~base:c ~next:a ())));
  match Delta.load_chain cas "orphan" with
  | _ -> Alcotest.fail "dangling base accepted"
  | exception Snapshot.Corrupt _ -> ()

let test_corruption_messages () =
  let good = Snapshot.to_bytes (build_world `Incore) in
  (* checksum failure reports expected vs found digests *)
  let flip = Bytes.of_string good in
  let pos = 40 + ((String.length good - 40) / 2) in
  Bytes.set flip pos (Char.chr (Char.code (Bytes.get flip pos) lxor 0xff));
  let flipped = Bytes.to_string flip in
  (match Snapshot.of_bytes flipped with
  | _ -> Alcotest.fail "bit flip accepted"
  | exception Snapshot.Corrupt msg ->
    checkb "checksum message carries both digests" true
      (contains msg "hashes to"));
  (* load_file errors carry the offending path *)
  let path = Filename.temp_file "jedd_snap" ".snap" in
  let oc = open_out_bin path in
  output_string oc flipped;
  close_out oc;
  (match Snapshot.load_file path with
  | _ -> Alcotest.fail "bit flip accepted from file"
  | exception Snapshot.Corrupt msg ->
    checkb "path in checksum message" true (contains msg path));
  Sys.remove path;
  (match Snapshot.load_file path with
  | _ -> Alcotest.fail "loaded a missing file"
  | exception Snapshot.Corrupt msg ->
    checkb "path in open error" true (contains msg path));
  (* a damaged CAS object names its path and both digests *)
  let root = Filename.temp_file "jedd_cas" "" in
  Sys.remove root;
  let cas = Cas.open_ root in
  let hex = Cas.put cas good in
  let obj_path =
    Filename.concat (Filename.concat root "objects") (hex ^ ".snap")
  in
  let oc = open_out_bin obj_path in
  output_string oc "damaged bytes";
  close_out oc;
  match Cas.get cas hex with
  | _ -> Alcotest.fail "damaged object served"
  | exception Cas.Corrupt_object msg ->
    checkb "object path named" true (contains msg obj_path);
    checkb "expected digest named" true (contains msg hex);
    checkb "found digest named" true
      (contains msg (hex_of "damaged bytes"))

let suite =
  [
    Alcotest.test_case "levelized round-trip (both backends)" `Quick
      test_levelized_roundtrip;
    Alcotest.test_case "levelized terminals" `Quick test_levelized_terminal;
    Alcotest.test_case "levelized malformed dumps rejected" `Quick
      test_levelized_malformed;
    Alcotest.test_case "snapshot round-trip (backend matrix)" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "snapshot after dynamic reordering" `Quick
      test_snapshot_reordered;
    Alcotest.test_case "analysis fixed point survives the store" `Quick
      test_snapshot_analysis_fixed_point;
    QCheck_alcotest.to_alcotest test_snapshot_qcheck;
    Alcotest.test_case "corrupt and truncated files rejected" `Quick
      test_corrupt_rejection;
    Alcotest.test_case "save_file/load_file" `Quick test_save_load_file;
    Alcotest.test_case "content-addressed store" `Quick test_cas;
    Alcotest.test_case "delta diff/apply round-trip" `Quick
      test_delta_diff_apply;
    Alcotest.test_case "delta chains through the store" `Quick
      test_delta_chain;
    Alcotest.test_case "corruption errors name path and digests" `Quick
      test_corruption_messages;
  ]
