(* Wiring of the five interrelated analyses, following Figure 2:

     Hierarchy ──> Virtual Call Resolution <── Points-to
                          │                        │
                          v                        v
                      Call Graph ──────────> Side Effects

   Each analysis is its own Jedd class; they exchange relations through
   the host (as the paper's modules exchange them through Soot). *)

module P = Jedd_minijava.Program
module Driver = Jedd_lang.Driver
module Interp = Jedd_lang.Interp

let analyses =
  [
    ("Hierarchy", Hierarchy.source);
    ("Points-to Analysis", Pointsto.source);
    ("Virtual Call Resolution", Vcall.source);
    ("Call Graph", Callgraph.source);
    ("Side-effect Analysis", Sideeffect.source);
  ]

let combined_source ?headroom (p : P.t) =
  Common.preamble ?headroom p ^ String.concat "\n" (List.map snd analyses)

let source_for (p : P.t) name =
  Common.preamble p ^ List.assoc name analyses

type results = {
  subtypes : int list list;  (* (sub, super), strict *)
  pt : int list list;  (* (var, heap) *)
  resolved : int list list;  (* (callsite, sig, type, method) *)
  call_edges : int list list;  (* (callsite, method) *)
  reachable : int list list;  (* (method) *)
  side_effects : int list list;  (* (method, heap, field) *)
}

(* The weighted-assignment hook: plug the interprocedural frequency
   analysis into the compile pipeline when [optimize] is requested. *)
let weight_hook optimize =
  if optimize then
    Some
      (fun tprog ->
        let f = Jedd_cost.Freq.analyze tprog in
        Jedd_cost.Freq.weight f)
  else None

let compile_one ?(optimize = false) (p : P.t) name =
  match
    Driver.compile ?weight:(weight_hook optimize)
      [ (name ^ ".jedd", source_for p name) ]
  with
  | Ok c -> c
  | Error e ->
    failwith (Printf.sprintf "%s: %s" name (Driver.error_to_string e))

(* receiver types at each call site, from points-to results *)
let receiver_types (p : P.t) pt_tuples =
  let recv_pt = Hashtbl.create 256 in
  List.iter
    (fun t ->
      match t with
      | [ v; h ] -> Hashtbl.add recv_pt v h
      | _ -> assert false)
    pt_tuples;
  List.concat_map
    (fun (cs : P.call_site) ->
      List.map
        (fun h -> [ cs.P.cs_id; p.P.heap_type.(h); cs.P.cs_sig ])
        (Hashtbl.find_all recv_pt cs.P.cs_recv))
    p.P.calls
  |> List.sort_uniq compare

(* All five analyses in ONE universe (the paper's "All 5 combined"
   compilation): one shared physical-domain assignment, every result
   relation alive side by side at the end — the form the snapshot store
   persists and the query server serves.  The analyses address their
   fields by qualified name, so they run unchanged on the combined
   instance. *)
let run_combined ?(node_capacity = 1 lsl 16) ?node_limit ?backend
    ?(reorder = false) ?(jobs = 1) ?headroom ?(naive = false)
    ?(optimize = false) (p : P.t) : Interp.t * results =
  let compiled =
    match
      Driver.compile ?weight:(weight_hook optimize)
        [ ("Combined.jedd", combined_source ?headroom p) ]
    with
    | Ok c -> c
    | Error e -> failwith ("combined: " ^ Driver.error_to_string e)
  in
  let inst =
    Driver.instantiate ~node_capacity ?node_limit ?backend compiled
  in
  let u = Interp.universe inst in
  let sequential () =
    Hierarchy.load_facts inst p;
    if naive then Hierarchy.run_naive inst else Hierarchy.run inst;
    let subtypes = Hierarchy.results inst in
    Pointsto.load_facts inst p;
    if naive then Pointsto.run_naive ~reorder inst
    else Pointsto.run ~reorder inst;
    let pt = Pointsto.results inst in
    Vcall.load_facts inst p;
    (if naive then Vcall.run_naive inst (receiver_types p pt)
     else Vcall.run inst (receiver_types p pt));
    let resolved = Vcall.results inst in
    let call_edges = Vcall.call_edges inst in
    Callgraph.load_facts inst p ~call_edges;
    if naive then Callgraph.run_naive ~reorder inst
    else Callgraph.run ~reorder inst;
    let reachable = Callgraph.results inst in
    Sideeffect.load_facts inst p ~pt ~call_edges;
    if naive then Sideeffect.run_naive inst else Sideeffect.run inst;
    let side_effects = Sideeffect.results inst in
    (inst, { subtypes; pt; resolved; call_edges; reachable; side_effects })
  in
  if naive || jobs <= 1 || Jedd_relation.Universe.backend_kind u <> `Incore
  then sequential ()
  else begin
    (* Stage-parallel schedule over Figure 2's dependency structure:
       {Hierarchy ∥ Points-to} → Virtual Calls → {Call Graph ∥ Side
       Effects}.  All domains share the one universe, whose declarations
       are frozen after instantiation; the manager runs in parallel mode
       so hash-consing is lock-striped and GC / reordering become
       stop-the-world phases at safe points.  Every participating domain
       registers with the rendezvous; the coordinating parent must NOT
       stay registered while blocked in [Domain.join] (it would never
       park, stalling any worker-triggered GC), so it steps out around
       each barrier. *)
    let module M = Jedd_bdd.Manager in
    let m = Jedd_relation.Universe.manager u in
    M.enter_parallel m;
    Fun.protect ~finally:(fun () -> M.exit_parallel m) @@ fun () ->
    M.stw_register m;
    Fun.protect ~finally:(fun () -> M.stw_unregister m) @@ fun () ->
    let spawn f =
      Domain.spawn (fun () ->
          M.stw_register m;
          Fun.protect ~finally:(fun () -> M.stw_unregister m) f)
    in
    let join2 da db =
      M.stw_unregister m;
      let ra = try Ok (Domain.join da) with e -> Error e in
      let rb = try Ok (Domain.join db) with e -> Error e in
      M.stw_register m;
      match (ra, rb) with
      | Ok a, Ok b -> (a, b)
      | Error e, _ | _, Error e -> raise e
    in
    Hierarchy.load_facts inst p;
    Pointsto.load_facts inst p;
    let dh =
      spawn (fun () ->
          Hierarchy.run inst;
          Hierarchy.results inst)
    and dp =
      spawn (fun () ->
          Pointsto.run ~reorder inst;
          Pointsto.results inst)
    in
    let subtypes, pt = join2 dh dp in
    Vcall.load_facts inst p;
    Vcall.run inst (receiver_types p pt);
    let resolved = Vcall.results inst in
    let call_edges = Vcall.call_edges inst in
    Callgraph.load_facts inst p ~call_edges;
    Sideeffect.load_facts inst p ~pt ~call_edges;
    let dc =
      spawn (fun () ->
          Callgraph.run ~reorder inst;
          Callgraph.results inst)
    and ds =
      spawn (fun () ->
          Sideeffect.run inst;
          Sideeffect.results inst)
    in
    let reachable, side_effects = join2 dc ds in
    (inst, { subtypes; pt; resolved; call_edges; reachable; side_effects })
  end

(* Package a combined instance as a store snapshot: the instance's
   registries plus every field relation, under its qualified name. *)
let snapshot ?(meta = []) inst =
  let domains, attrs, physdoms = Interp.registries inst in
  {
    Jedd_store.Snapshot.u = Interp.universe inst;
    meta;
    domains;
    attrs;
    physdoms;
    relations = Interp.fields inst;
  }

let run_all ?(node_capacity = 1 lsl 16) ?node_limit ?backend
    ?(reorder = false) ?(optimize = false) (p : P.t) : results =
  let compile_one p name = compile_one ~optimize p name in
  let instantiate c = Driver.instantiate ~node_capacity ?node_limit ?backend c in
  (* 1. hierarchy *)
  let hier = instantiate (compile_one p "Hierarchy") in
  Hierarchy.load_facts hier p;
  Hierarchy.run hier;
  let subtypes = Hierarchy.results hier in
  (* 2. points-to *)
  let pta = instantiate (compile_one p "Points-to Analysis") in
  Pointsto.load_facts pta p;
  Pointsto.run ~reorder pta;
  let pt = Pointsto.results pta in
  (* 3. virtual call resolution *)
  let vcr = instantiate (compile_one p "Virtual Call Resolution") in
  Vcall.load_facts vcr p;
  Vcall.run vcr (receiver_types p pt);
  let resolved = Vcall.results vcr in
  let call_edges = Vcall.call_edges vcr in
  (* 4. call graph *)
  let cg = instantiate (compile_one p "Call Graph") in
  Callgraph.load_facts cg p ~call_edges;
  Callgraph.run ~reorder cg;
  let reachable = Callgraph.results cg in
  (* 5. side effects *)
  let se = instantiate (compile_one p "Side-effect Analysis") in
  Sideeffect.load_facts se p ~pt ~call_edges;
  Sideeffect.run se;
  let side_effects = Sideeffect.results se in
  { subtypes; pt; resolved; call_edges; reachable; side_effects }
