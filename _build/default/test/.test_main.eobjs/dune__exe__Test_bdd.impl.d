test/test_bdd.ml: Alcotest Array Hashtbl Jedd_bdd List QCheck QCheck_alcotest
