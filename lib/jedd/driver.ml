type compiled = {
  tprog : Tast.tprogram;
  graph : Constraints.t;
  assignment : Encode.assignment;
  constraint_stats : Constraints.stats;
}

type error = { message : string; pos : Ast.pos option; phase : string }

let error_to_string e =
  match e.pos with
  | Some p -> Format.asprintf "%s error at %a: %s" e.phase Ast.pp_pos p e.message
  | None -> Printf.sprintf "%s error: %s" e.phase e.message

let compile ?max_paths_per_class sources =
  try
    let decls =
      List.concat_map
        (fun (file, src) -> Parser.parse_program ~file src)
        sources
    in
    let tprog = Typecheck.check decls in
    let graph = Constraints.build tprog in
    let assignment = Encode.solve ?max_paths_per_class tprog graph in
    Ok
      {
        tprog;
        graph;
        assignment;
        constraint_stats = Constraints.stats tprog graph;
      }
  with
  | Lexer.Lex_error (msg, pos) -> Error { message = msg; pos = Some pos; phase = "parse" }
  | Parser.Parse_error (msg, pos) ->
    Error { message = msg; pos = Some pos; phase = "parse" }
  | Typecheck.Error (msg, pos) ->
    Error { message = msg; pos = Some pos; phase = "typecheck" }
  | Encode.Unreachable_attribute msgs ->
    Error { message = String.concat "\n" msgs; pos = None; phase = "assignment" }
  | Encode.Assignment_conflict msg ->
    Error { message = msg; pos = None; phase = "assignment" }

let compile_exn ?max_paths_per_class ~file src =
  match compile ?max_paths_per_class [ (file, src) ] with
  | Ok c -> c
  | Error e -> failwith (error_to_string e)

let instantiate ?node_capacity ?node_limit ?backend c =
  Interp.instantiate ?node_capacity ?node_limit ?backend c.tprog c.assignment
