(* jeddc: the Jedd-to-Java translator CLI (Figure 1).

   Usage:
     jeddc FILE.jedd...                 check + assign physical domains
     jeddc -o OUT.java FILE.jedd...    also write the generated Java
     jeddc --stats FILE.jedd...        print Table 1-style statistics
     jeddc --dimacs OUT.cnf FILE...    dump the SAT instance *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --jobs N, then JEDD_JOBS, then the recommended domain count.  The
   translator pipeline itself is single-domain — the flag is validated
   here so the three CLIs agree on the interface, and generated-code
   consumers can rely on jeddc rejecting the same values jedd-analyze
   would. *)
let resolve_jobs jobs =
  let parse s =
    try Jedd_bdd.Par.jobs_of_string s
    with Invalid_argument msg ->
      Printf.eprintf "jeddc: %s\n" msg;
      exit 2
  in
  match (jobs, Sys.getenv_opt "JEDD_JOBS") with
  | Some s, _ -> parse s
  | None, Some s -> parse s
  | None, None -> Jedd_bdd.Par.default_jobs ()

(* --domain-report=json: machine-readable dump of the constraint-graph
   statistics, the computed widths, the weighted-assignment outcome (if
   any), and every candidate replace site with its static weight. *)
let domain_report_json (compiled : Jedd_lang.Driver.compiled) =
  let module D = Jedd_lang.Driver in
  let module C = Jedd_lang.Constraints in
  let module E = Jedd_lang.Encode in
  let js = Jedd_lint.Diag.json_string in
  let st = compiled.D.constraint_stats in
  let sat = compiled.D.assignment.E.stats in
  let freq = Jedd_cost.Freq.analyze compiled.D.tprog in
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "{\n";
  add
    (Printf.sprintf
       "  \"constraints\": { \"rel_exprs\": %d, \"attrs\": %d, \"physdoms\": \
        %d, \"conflict\": %d, \"equality\": %d, \"assignment\": %d },\n"
       st.C.n_rel_exprs st.C.n_attrs st.C.n_physdoms st.C.n_conflict
       st.C.n_equality st.C.n_assignment);
  add
    (Printf.sprintf
       "  \"sat\": { \"vars\": %d, \"clauses\": %d, \"literals\": %d, \
        \"solve_seconds\": %.4f },\n"
       sat.E.sat_vars sat.E.sat_clauses sat.E.sat_literals
       sat.E.solve_seconds);
  (match compiled.D.weighted_stats with
  | Some w ->
    add
      (Printf.sprintf
         "  \"weighted\": { \"sites\": %d, \"kept\": %d, \"broken\": %d, \
          \"cost\": %d, \"solves\": %d },\n"
         w.E.w_sites w.E.w_kept w.E.w_broken w.E.w_cost w.E.w_solves)
  | None -> add "  \"weighted\": null,\n");
  add "  \"widths\": { ";
  add
    (String.concat ", "
       (List.map
          (fun (name, bits) -> Printf.sprintf "%s: %d" (js name) bits)
          (List.sort compare compiled.D.assignment.E.widths)));
  add " },\n";
  (* one entry per candidate replace site (dummy replace wrapper) *)
  let wrap_eids =
    Array.fold_left
      (fun acc (n : C.node) ->
        match n.C.site with C.S_wrap e -> e :: acc | _ -> acc)
      []
      compiled.D.graph.C.nodes
    |> List.sort_uniq compare
  in
  add "  \"sites\": [\n";
  add
    (String.concat ",\n"
       (List.map
          (fun eid ->
            let p = compiled.D.graph.C.site_pos (C.S_wrap eid) in
            Printf.sprintf
              "    { \"eid\": %d, \"kind\": %s, \"file\": %s, \"line\": %d, \
               \"col\": %d, \"weight\": %d, \"depth\": %d, \"fixpoint\": %b }"
              eid
              (js (compiled.D.graph.C.site_kind (C.S_expr eid)))
              (js p.Jedd_lang.Ast.file)
              p.Jedd_lang.Ast.line p.Jedd_lang.Ast.col
              (Jedd_cost.Freq.weight freq eid)
              (Jedd_cost.Freq.depth freq eid)
              (Jedd_cost.Freq.in_fixpoint freq eid))
          wrap_eids));
  if wrap_eids <> [] then add "\n";
  add "  ]\n";
  add "}";
  Buffer.contents buf

let run files output stats dimacs dump_ir lint optimize domain_report jobs =
  ignore (resolve_jobs jobs : int);
  if files = [] then begin
    prerr_endline "jeddc: no input files";
    exit 2
  end;
  let sources = List.map (fun f -> (f, read_file f)) files in
  (* optionally dump the raw CNF before solving *)
  (if dimacs <> "" then
     try
       let decls =
         List.concat_map
           (fun (file, src) -> Jedd_lang.Parser.parse_program ~file src)
           sources
       in
       let tprog = Jedd_lang.Typecheck.check decls in
       let graph = Jedd_lang.Constraints.build tprog in
       let solver, st = Jedd_lang.Encode.build_cnf tprog graph in
       ignore solver;
       let oc = open_out dimacs in
       Printf.fprintf oc "c jeddc physical-domain assignment instance\n";
       Printf.fprintf oc "c vars=%d clauses=%d literals=%d\n"
         st.Jedd_lang.Encode.sat_vars st.Jedd_lang.Encode.sat_clauses
         st.Jedd_lang.Encode.sat_literals;
       Printf.fprintf oc "p cnf %d %d\n" st.Jedd_lang.Encode.sat_vars
         st.Jedd_lang.Encode.sat_clauses;
       close_out oc;
       Printf.printf "jeddc: SAT instance summary written to %s\n" dimacs
     with _ -> ());
  let weight =
    if optimize then
      Some
        (fun tprog ->
          let f = Jedd_cost.Freq.analyze tprog in
          Jedd_cost.Freq.weight f)
    else None
  in
  match Jedd_lang.Driver.compile ?weight sources with
  | Error e ->
    prerr_endline (Jedd_lang.Driver.error_to_string e);
    exit 1
  | Ok compiled ->
    (match domain_report with
    | Some "json" ->
      print_endline (domain_report_json compiled);
      exit 0
    | Some other ->
      Printf.eprintf "jeddc: unknown domain-report format %s (json)\n" other;
      exit 2
    | None -> ());
    (match lint with
    | Some format ->
      (* lint mode: diagnostics only, CI-friendly exit code *)
      let report = Jedd_lint.Driver.lint compiled in
      (match format with
      | "json" -> print_endline (Jedd_lint.Driver.to_json report)
      | "text" -> print_endline (Jedd_lint.Driver.to_text report)
      | other ->
        Printf.eprintf "jeddc: unknown lint format %s (text|json)\n" other;
        exit 2);
      exit (Jedd_lint.Driver.exit_code report)
    | None -> ());
    let st = compiled.Jedd_lang.Driver.constraint_stats in
    let sat = compiled.Jedd_lang.Driver.assignment.Jedd_lang.Encode.stats in
    Printf.printf "jeddc: physical domain assignment complete (%.4f s)\n"
      sat.Jedd_lang.Encode.solve_seconds;
    (match compiled.Jedd_lang.Driver.weighted_stats with
    | Some w ->
      Printf.printf
        "jeddc: weighted objective kept %d of %d replace sites (broken cost \
         %d, %d SAT solves)\n"
        w.Jedd_lang.Encode.w_kept w.Jedd_lang.Encode.w_sites
        w.Jedd_lang.Encode.w_cost w.Jedd_lang.Encode.w_solves
    | None -> ());
    if stats then begin
      Printf.printf "  relational expressions : %d\n"
        st.Jedd_lang.Constraints.n_rel_exprs;
      Printf.printf "  attributes             : %d\n"
        st.Jedd_lang.Constraints.n_attrs;
      Printf.printf "  physical domains       : %d\n"
        st.Jedd_lang.Constraints.n_physdoms;
      Printf.printf "  conflict constraints   : %d\n"
        st.Jedd_lang.Constraints.n_conflict;
      Printf.printf "  equality constraints   : %d\n"
        st.Jedd_lang.Constraints.n_equality;
      Printf.printf "  assignment constraints : %d\n"
        st.Jedd_lang.Constraints.n_assignment;
      Printf.printf "  SAT variables          : %d\n" sat.Jedd_lang.Encode.sat_vars;
      Printf.printf "  SAT clauses            : %d\n"
        sat.Jedd_lang.Encode.sat_clauses;
      Printf.printf "  SAT literals           : %d\n"
        sat.Jedd_lang.Encode.sat_literals
    end;
    if output <> "" then begin
      let oc = open_out output in
      output_string oc (Jedd_lang.Emit_java.emit_program compiled);
      close_out oc;
      Printf.printf "jeddc: generated Java written to %s\n" output
    end;
    if dump_ir then begin
      let methods = Jedd_lang.Lower.lower_program compiled in
      List.iter
        (fun q ->
          let m = Hashtbl.find methods q in
          Format.printf "%a@." Jedd_lang.Ir.pp_method m)
        compiled.Jedd_lang.Driver.tprog.Jedd_lang.Tast.method_order
    end

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Jedd source files")

let output_arg =
  Arg.(
    value & opt string ""
    & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Write generated Java to $(docv)")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print Table 1-style statistics")

let dimacs_arg =
  Arg.(
    value & opt string ""
    & info [ "dimacs" ] ~docv:"OUT"
        ~doc:"Dump the physical-domain-assignment SAT instance summary")

let dump_ir_arg =
  Arg.(
    value & flag
    & info [ "dump-ir" ] ~doc:"Print the lowered relational IR (§3.2)")

let lint_arg =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "lint" ] ~docv:"FORMAT"
        ~doc:
          "Run the jeddlint checkers instead of generating code and print \
           diagnostics as $(docv) (text or json).  Exits 2 on errors, 1 on \
           warnings, 0 otherwise.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "optimize-domains" ]
        ~doc:
          "Solve the physical-domain assignment with the weighted objective: \
           minimise the summed static execution-weight (interprocedural \
           frequency analysis, loop nesting, fixed-point loops) of the \
           replace instructions the assignment emits, instead of accepting \
           an arbitrary satisfying model.  Analysis results are unchanged; \
           only where the copies happen moves.")

let domain_report_arg =
  Arg.(
    value
    & opt ~vopt:(Some "json") (some string) None
    & info [ "domain-report" ] ~docv:"FORMAT"
        ~doc:
          "Print a machine-readable report of the physical-domain \
           assignment (constraint-graph statistics, SAT instance sizes, \
           computed widths, and every candidate replace site with its \
           static weight, loop depth and fixed-point flag) and exit.  Only \
           $(b,json) is supported.")

let jobs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Parallel width for the generated runtime (1..64); validated here, \
           falls back to JEDD_JOBS then the recommended domain count.  The \
           translator itself runs on one domain.")

let cmd =
  Cmd.v
    (Cmd.info "jeddc" ~version:Jedd_relation.Version.banner
       ~doc:"Jedd to Java translator (PLDI 2004 reproduction)")
    Term.(
      const run $ files_arg $ output_arg $ stats_arg $ dimacs_arg $ dump_ir_arg
      $ lint_arg $ optimize_arg $ domain_report_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
