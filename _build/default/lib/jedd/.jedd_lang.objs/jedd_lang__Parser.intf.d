lib/jedd/parser.mli: Ast
