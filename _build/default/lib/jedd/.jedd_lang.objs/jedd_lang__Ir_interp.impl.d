lib/jedd/ir_interp.ml: Array Format Hashtbl Interp Ir Jedd_relation List Lower Tast
