lib/minijava/frontend.mli: Program
