(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations listed in DESIGN.md.

     dune exec bench/main.exe                 -- everything (default)
     dune exec bench/main.exe -- table1       -- Table 1 only
     dune exec bench/main.exe -- table2       -- Table 2 only
     dune exec bench/main.exe -- fig7         -- Figure 7 constraint graph
     dune exec bench/main.exe -- compactness  -- the §5 LoC comparison
     dune exec bench/main.exe -- ablation-compose | ablation-replace
                                | ablation-order | ablation-memory
     dune exec bench/main.exe -- bechamel     -- Bechamel micro-benchmarks
     dune exec bench/main.exe -- reorder      -- order optimizer off vs on
     dune exec bench/main.exe -- backend      -- in-core vs extmem points-to
     dune exec bench/main.exe -- parallel     -- multi-core scaling curves
     dune exec bench/main.exe -- json         -- write BENCH_pr1.json
     dune exec bench/main.exe -- json2        -- write BENCH_pr2.json
     dune exec bench/main.exe -- json3        -- write BENCH_pr3.json
     dune exec bench/main.exe -- json5        -- write BENCH_pr5.json
                                                 (cold vs warm-start jeddd)
     dune exec bench/main.exe -- json6        -- write BENCH_pr6.json
                                                 (multi-core scaling, PR 6)
     dune exec bench/main.exe -- json8        -- write BENCH_pr8.json
                                                 (incremental cost per edit)
     dune exec bench/main.exe -- json9        -- write BENCH_pr9.json
                                                 (weighted assignment +
                                                 hybrid backend, PR 9)
     dune exec bench/main.exe -- json10       -- write BENCH_pr10.json
                                                 (mtbdd weighted analyses
                                                 vs boolean recount, PR 10)
     dune exec bench/main.exe -- smoke        -- seconds-scale sanity run
                                                 (also: dune build @bench-smoke)

   --backend=incore|extmem|hybrid|mtbdd (any command) selects the
   relation backend for every universe the benchmarks create, via
   JEDD_BACKEND. *)

module Workload = Jedd_minijava.Workload
module Program = Jedd_minijava.Program
module Suite = Jedd_analyses.Suite
module Baseline = Jedd_analyses.Pointsto_baseline
module Driver = Jedd_lang.Driver
module Interp = Jedd_lang.Interp
module C = Jedd_lang.Constraints
module E = Jedd_lang.Encode

let line () = print_endline (String.make 100 '-')

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ----------------------------------------------------------------- *)
(* Table 1: size of the physical domain assignment problem            *)
(* ----------------------------------------------------------------- *)

let table1 () =
  line ();
  print_endline "Table 1: Size of the physical domain assignment problem";
  print_endline
    "(paper anchors: the combined analyses have 613 exprs / 1586 attributes;\n\
     zChaff solved the largest instance in 4.6 s on a 1833 MHz Athlon)";
  line ();
  Printf.printf "%-24s %6s %6s %5s | %8s %8s %10s | %9s %8s %9s | %8s\n"
    "Analysis" "Exprs" "Attrs" "Doms" "Conflict" "Equality" "Assignment"
    "Variables" "Clauses" "Literals" "Time (s)";
  line ();
  let p = Workload.generate (Workload.profile_named "javac") in
  let row name sources =
    match Driver.compile sources with
    | Error e ->
      Printf.printf "%-24s FAILED: %s\n" name (Driver.error_to_string e)
    | Ok c ->
      let st = c.Driver.constraint_stats in
      let sat = c.Driver.assignment.E.stats in
      Printf.printf "%-24s %6d %6d %5d | %8d %8d %10d | %9d %8d %9d | %8.4f\n"
        name st.C.n_rel_exprs st.C.n_attrs st.C.n_physdoms st.C.n_conflict
        st.C.n_equality st.C.n_assignment sat.E.sat_vars sat.E.sat_clauses
        sat.E.sat_literals sat.E.solve_seconds
  in
  List.iter
    (fun (name, _) -> row name [ (name, Suite.source_for p name) ])
    Suite.analyses;
  row "All 5 combined" [ ("combined.jedd", Suite.combined_source p) ];
  line ();
  print_endline
    "Shape check: the combined program dominates every single analysis in\n\
     every column, and solving time stays negligible next to building the\n\
     system — the paper's 'very acceptable' conclusion.\n"

(* ----------------------------------------------------------------- *)
(* Table 2: hand-coded vs Jedd points-to analysis                     *)
(* ----------------------------------------------------------------- *)

let table2 () =
  line ();
  print_endline "Table 2: Running time, hand-coded BDD vs Jedd points-to";
  print_endline
    "(paper: javac 3.4/3.5 s, compress 22.2/22.4 s, javac-1.3.1 26.2/26.3 s,\n\
     sablecc 25.8/26.1 s, jedit 39.7/41.3 s — overhead 0.5%..4%)";
  line ();
  Printf.printf "%-12s %14s %14s %10s %12s\n" "Benchmark" "Hand-coded (s)"
    "Jedd (s)" "Overhead" "pt tuples";
  line ();
  List.iter
    (fun (prof : Workload.profile) ->
      let p = Workload.generate prof in
      (* sub-second workloads are noise-prone: take the best of a few
         repetitions (setup excluded from the timed region) *)
      let best run_once =
        let t1 = run_once () in
        if t1 > 2.0 then t1
        else List.fold_left min t1 (List.init 2 (fun _ -> run_once ()))
      in
      let hand_tuples = ref 0 in
      let hand_t =
        best (fun () ->
            let b = Baseline.create p in
            let (), t = wall (fun () -> Baseline.solve b) in
            hand_tuples := List.length (Baseline.pt_tuples b);
            Baseline.destroy b;
            t)
      in
      (* jeddc runs at build time; the timed region is execution only *)
      let compiled = Suite.compile_one p "Points-to Analysis" in
      let jedd_tuples = ref 0 in
      let jedd_t =
        best (fun () ->
            let inst = Driver.instantiate ~node_capacity:(1 lsl 18) compiled in
            Jedd_analyses.Pointsto.load_facts inst p;
            let (), t = wall (fun () -> Jedd_analyses.Pointsto.run inst) in
            jedd_tuples := List.length (Jedd_analyses.Pointsto.results inst);
            t)
      in
      let overhead = (jedd_t -. hand_t) /. hand_t *. 100.0 in
      Printf.printf "%-12s %14.3f %14.3f %9.1f%% %12d%s\n" prof.Workload.name
        hand_t jedd_t overhead !jedd_tuples
        (if !hand_tuples <> !jedd_tuples then "  (MISMATCH!)" else ""))
    Workload.profiles;
  line ();
  print_endline
    "Shape check: both versions compute identical relations; Jedd pays a\n\
     small constant factor for the conveniences the paper lists.\n"

(* ----------------------------------------------------------------- *)
(* Figure 7: the constraint graph of the Figure 4 join                *)
(* ----------------------------------------------------------------- *)

let fig7_source =
  "domain Type 4;\n\
   domain Signature 4;\n\
   domain Method 4;\n\
   attribute type : Type;\n\
   attribute rectype : Type;\n\
   attribute tgttype : Type;\n\
   attribute signature : Signature;\n\
   attribute method : Method;\n\
   physdom T1;\nphysdom T2;\nphysdom S1;\nphysdom M1;\n\
   class Fig7 {\n\
   \  <type, signature, method> declaresMethod;\n\
   \  <rectype, signature, tgttype> toResolve;\n\
   \  public void go() {\n\
   \    <rectype:T1, signature:S1, tgttype:T2, method:M1> resolved =\n\
   \      toResolve{tgttype, signature} >< declaresMethod{type, signature};\n\
   \  }\n\
   }\n"

let fig7 () =
  line ();
  print_endline
    "Figure 7: physical-domain-assignment constraints for Fig. 4 lines 6-7";
  line ();
  match Driver.compile [ ("Fig7.jedd", fig7_source) ] with
  | Error e -> print_endline (Driver.error_to_string e)
  | Ok c ->
    let st = c.Driver.constraint_stats in
    Printf.printf
      "constraint graph: %d conflict edges, %d equality edges, %d assignment edges\n\n"
      st.C.n_conflict st.C.n_equality st.C.n_assignment;
    print_endline
      "resulting components (each attribute shares its component's domain,\n\
       so every dummy replace disappears):";
    let phys site attr =
      (c.Driver.assignment.E.phys_of site attr).Jedd_lang.Tast.p_name
    in
    let show_var v attrs =
      List.iter
        (fun a ->
          Printf.printf "  %-24s %-10s -> %s\n" v a (phys (C.S_var v) a))
        attrs
    in
    show_var "Fig7.toResolve" [ "rectype"; "signature"; "tgttype" ];
    show_var "Fig7.declaresMethod" [ "type"; "signature"; "method" ];
    show_var "Fig7.go.resolved" [ "rectype"; "signature"; "tgttype"; "method" ];
    print_endline
      "\nExpected partition (paper): {rectype}->T1, {signatures}->S1,\n\
       {tgttype,type}->T2, {method}->M1 — no replace operations remain.\n"

(* ----------------------------------------------------------------- *)
(* §5 compactness: lines of Jedd vs lines of conventional code        *)
(* ----------------------------------------------------------------- *)

let ncloc text =
  List.length
    (List.filter
       (fun l ->
         let l = String.trim l in
         String.length l > 0
         && not (String.length l >= 2 && String.sub l 0 2 = "//")
         && not (String.length l >= 2 && String.sub l 0 2 = "(*"))
       (String.split_on_char '\n' text))

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let compactness () =
  line ();
  print_endline
    "§5 compactness: the side-effect analysis in Jedd vs conventional code";
  print_endline "(paper: 803 non-comment lines of Java vs 124 lines of Jedd)";
  line ();
  let jedd_lines = ncloc Jedd_analyses.Sideeffect.source in
  let conventional =
    List.fold_left
      (fun acc path -> match read_file path with
        | s -> acc + ncloc s
        | exception _ -> acc)
      0
      [ "lib/minijava/reference.ml"; "../lib/minijava/reference.ml" ]
  in
  Printf.printf "  Jedd side-effect analysis      : %d lines\n" jedd_lines;
  Printf.printf
    "  conventional (sets + worklists): %d lines for all five analyses\n"
    conventional;
  if conventional > 0 then
    Printf.printf
      "  per-analysis conventional ~ %d lines -> Jedd is ~%.1fx more compact\n\n"
      (conventional / 5)
      (float_of_int (conventional / 5) /. float_of_int (max 1 jedd_lines))

(* ----------------------------------------------------------------- *)
(* Ablations                                                          *)
(* ----------------------------------------------------------------- *)

module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module Quant = Jedd_bdd.Quant
module Fdd = Jedd_bdd.Fdd

let ablation_compose () =
  line ();
  print_endline
    "Ablation (§2.2.3): compose (one-pass relational product) vs\n\
     join-then-project, measured as two complete points-to solves";
  line ();
  Printf.printf "%-12s %14s %20s %10s %14s\n" "Benchmark" "relprod (s)"
    "join+project (s)" "speedup" "peak nodes";
  List.iter
    (fun name ->
      let p = Workload.generate (Workload.profile_named name) in
      let b1 = Baseline.create p in
      let (), t_rel = wall (fun () -> Baseline.solve ~use_relprod:true b1) in
      let b2 = Baseline.create p in
      let (), t_jp = wall (fun () -> Baseline.solve ~use_relprod:false b2) in
      let peak1 = M.peak_nodes (Baseline.manager b1) in
      let peak2 = M.peak_nodes (Baseline.manager b2) in
      Printf.printf "%-12s %14.3f %20.3f %9.2fx %7d/%7d\n" name t_rel t_jp
        (t_jp /. t_rel) peak1 peak2;
      Baseline.destroy b1;
      Baseline.destroy b2)
    [ "javac"; "sablecc" ];
  (* The effect §2.2.3 describes appears when the materialised
     conjunction is much larger than the projected result: compose two
     dense random binary relations R(x,y) ; S(y,z). *)
  let m = M.create ~node_capacity:(1 lsl 18) () in
  let bits = 9 in
  let bx = Fdd.extdomain_bits m bits in
  let by = Fdd.extdomain_bits m bits in
  let bz = Fdd.extdomain_bits m bits in
  let st = Random.State.make [| 424242 |] in
  let random_rel b1 b2 n =
    let acc = ref M.zero in
    for _ = 1 to n do
      let tup =
        Ops.band m
          (Fdd.ithvar m b1 (Random.State.int st (1 lsl bits)))
          (Fdd.ithvar m b2 (Random.State.int st (1 lsl bits)))
      in
      acc := Ops.bor m !acc tup
    done;
    M.addref m !acc
  in
  let r = random_rel bx by 4000 in
  let s = random_rel by bz 4000 in
  let y_cube = M.addref m (Fdd.domain_cube m by) in
  let result_rel, t_rel =
    wall (fun () ->
        M.clear_caches m;
        Quant.relprod m r s y_cube)
  in
  let result_jp, t_jp =
    wall (fun () ->
        M.clear_caches m;
        let conj = Ops.band m r s in
        Quant.exist m conj y_cube)
  in
  assert (result_rel = result_jp);
  Printf.printf
    "\n  dense composition R;S (4000-tuple random relations, 9-bit domains):\n";
  Printf.printf "    relprod        : %.4f s\n" t_rel;
  Printf.printf "    join + project : %.4f s  -> relprod %.2fx faster\n" t_jp
    (t_jp /. t_rel);
  print_endline
    "  (join-then-project materialises the full conjunction before\n\
     quantifying; the relational product never builds it — the reason\n\
     §2.2.3 gives for having both >< and <> in the language.  On the\n\
     points-to fixpoints above the intermediate stays small, so the two\n\
     strategies tie; dense compositions show the gap.)\n"

let ablation_replace () =
  line ();
  print_endline
    "Ablation (§3.3.2): replaces kept by the assignment vs the naive\n\
     wrap-everything translation";
  line ();
  let p = Workload.generate (Workload.profile_named "compress") in
  let compiled = Suite.compile_one p "Points-to Analysis" in
  let inst = Driver.instantiate compiled in
  let recorder = Jedd_profiler.Recorder.create () in
  Jedd_profiler.Recorder.attach recorder (Interp.universe inst)
    ~level:Jedd_relation.Universe.Counts;
  Jedd_analyses.Pointsto.load_facts inst p;
  Jedd_analyses.Pointsto.run inst;
  Jedd_profiler.Recorder.detach (Interp.universe inst);
  let rows = Jedd_profiler.Recorder.rows recorder in
  let total = List.length rows in
  let replaces =
    List.length
      (List.filter
         (fun (r : Jedd_profiler.Recorder.row) ->
           r.event.Jedd_relation.Universe.op = "replace")
         rows)
  in
  let st = compiled.Driver.constraint_stats in
  Printf.printf "  dummy replaces in the wrap-everything translation : %d sites\n"
    st.C.n_assignment;
  Printf.printf
    "  replace operations actually executed (whole run)  : %d of %d ops\n"
    replaces total;
  print_endline
    "  (the naive translation replaces at every consumption point on every\n\
     iteration; the SAT assignment keeps only the layout changes the\n\
     dataflow genuinely needs)\n"

let ablation_order () =
  line ();
  print_endline
    "Ablation (§3.3.1): bit ordering — interleaved vs consecutive blocks";
  line ();
  let n = 10 in
  let run interleaved =
    let m = M.create ~node_capacity:(1 lsl 16) () in
    let b1, b2 =
      if interleaved then
        match Fdd.extdomains_interleaved m [ 1 lsl n; 1 lsl n ] with
        | [ a; b ] -> (a, b)
        | _ -> assert false
      else (Fdd.extdomain_bits m n, Fdd.extdomain_bits m n)
    in
    let eq = Fdd.equality m b1 b2 in
    Jedd_bdd.Count.nodecount m eq
  in
  let inter = run true and consec = run false in
  Printf.printf "  equality relation over two %d-bit domains:\n" n;
  Printf.printf "    interleaved bits : %6d BDD nodes (linear)\n" inter;
  Printf.printf "    consecutive bits : %6d BDD nodes (exponential)\n" consec;
  Printf.printf "    ratio            : %.0fx\n\n"
    (float_of_int consec /. float_of_int inter)

let ablation_memory () =
  line ();
  print_endline "Ablation (§4.2): eager releases vs leaking handles";
  line ();
  let chain release_temps =
    let u = Jedd_relation.Universe.create () in
    let d = Jedd_relation.Domain.declare ~name:"D" ~size:4096 () in
    let ph = Jedd_relation.Physdom.declare u ~name:"P" ~bits:12 in
    let a = Jedd_relation.Attribute.declare ~name:"a" ~domain:d in
    let sch =
      Jedd_relation.Schema.make [ { Jedd_relation.Schema.attr = a; phys = ph } ]
    in
    let acc = ref (Jedd_relation.Relation.empty u sch) in
    let keep_alive = ref [] in
    for i = 0 to 400 do
      let t = Jedd_relation.Relation.tuple u sch [ i * 7 mod 4096 ] in
      let next = Jedd_relation.Relation.union !acc t in
      Jedd_relation.Relation.release t;
      if release_temps then Jedd_relation.Relation.release !acc
      else keep_alive := !acc :: !keep_alive;
      acc := next
    done;
    let m = Jedd_relation.Universe.manager u in
    M.gc m;
    (M.live_nodes m, M.peak_nodes m)
  in
  let live_e, peak_e = chain true in
  let live_l, peak_l = chain false in
  Printf.printf
    "  union chain (401 steps), eager release : %6d live / %6d peak nodes\n"
    live_e peak_e;
  Printf.printf
    "  union chain (401 steps), leak handles  : %6d live / %6d peak nodes\n"
    live_l peak_l;
  print_endline
    "  (eager reference-count drops let the BDD GC reclaim dead\n\
     intermediate relations; holding handles pins every intermediate,\n\
     exactly the §4.2 failure mode Jedd's containers avoid)\n"

(* §4.1: "several researchers have suggested using ZDDs for our
   points-to analysis algorithms" — compare representation sizes of the
   converged points-to relation. *)
let ablation_zdd () =
  line ();
  print_endline
    "Ablation (§4.1): BDD vs ZDD node counts for the points-to relation";
  line ();
  Printf.printf "%-12s %10s %10s %10s %8s\n" "Benchmark" "pt tuples"
    "BDD nodes" "ZDD nodes" "ratio";
  List.iter
    (fun name ->
      let p = Workload.generate (Workload.profile_named name) in
      let b = Baseline.create p in
      Baseline.solve b;
      let m = Baseline.manager b in
      let pt = Baseline.pt_rel b in
      let bdd_nodes = Jedd_bdd.Count.nodecount m pt in
      let z = Jedd_bdd.Zdd.create () in
      let support = Jedd_bdd.Count.support_levels m pt in
      let znode = Jedd_bdd.Zdd.of_bdd ~over:support m pt z in
      let zdd_nodes = Jedd_bdd.Zdd.nodecount z znode in
      let tuples = List.length (Baseline.pt_tuples b) in
      Printf.printf "%-12s %10d %10d %10d %8.2f\n" name tuples bdd_nodes
        zdd_nodes
        (float_of_int bdd_nodes /. float_of_int zdd_nodes);
      Baseline.destroy b)
    [ "compress"; "javac"; "sablecc" ];
  print_endline
    "  (sparse relations favour zero-suppression; the ratio quantifies\n\
     what the paper's planned ZDD backend stood to gain)\n"

(* ----------------------------------------------------------------- *)
(* Bechamel micro-benchmarks (one per table)                          *)
(* ----------------------------------------------------------------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let p = Workload.generate Workload.tiny in
  let test_table1 =
    Test.make ~name:"table1-compile-assign-pointsto"
      (Staged.stage (fun () ->
           ignore (Suite.compile_one p "Points-to Analysis")))
  in
  let test_table2 =
    Test.make ~name:"table2-handcoded-pointsto-tiny"
      (Staged.stage (fun () ->
           let b = Baseline.create p in
           Baseline.solve b;
           Baseline.destroy b))
  in
  let tests = Test.make_grouped ~name:"jedd" [ test_table1; test_table2 ] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  print_endline "Bechamel micro-benchmarks (monotonic clock):";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-40s %14.1f ns/run\n" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    results;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* Machine-readable benchmark summary (BENCH_pr1.json) and the        *)
(* seconds-scale smoke run behind the @bench-smoke alias              *)
(* ----------------------------------------------------------------- *)

module Rep = Jedd_bdd.Replace

let ops_per_sec f =
  ignore (f ());
  (* double the repetition count until the timed region is long enough
     to trust the clock *)
  let rec go n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (f ())
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.25 then go (n * 2) else float_of_int n /. dt
  in
  go 4

(* Microbenchmark fixture mirroring the runtime's join/compose pattern:
   consecutive physical-domain blocks, with the shared attribute moved
   by an order-preserving block permutation — the fused kernels' fast
   path, exactly the layout the SAT assignment produces. *)
let kernel_fixture () =
  let m = M.create ~node_capacity:(1 lsl 18) () in
  let bits = 10 in
  let bx = Fdd.extdomain_bits m bits in
  let by = Fdd.extdomain_bits m bits in
  let by' = Fdd.extdomain_bits m bits in
  let bz = Fdd.extdomain_bits m bits in
  let bw = Fdd.extdomain_bits m bits in
  let st = Random.State.make [| 987654321 |] in
  let random_tuple blocks =
    List.fold_left
      (fun acc b ->
        Ops.band m acc (Fdd.ithvar m b (Random.State.int st (1 lsl bits))))
      M.one blocks
  in
  let random_rel blocks n =
    let acc = ref M.zero in
    for _ = 1 to n do
      acc := Ops.bor m !acc (random_tuple blocks)
    done;
    M.addref m !acc
  in
  let f = random_rel [ bx; by ] 3000 in
  let f2 = random_rel [ bx; by ] 3000 in
  let g = random_rel [ by'; bz ] 3000 in
  (* ternary relation for the project+coerce benchmark: quantifying the
     trailing attribute leaves a large survivor to re-lay out *)
  let g3 = random_rel [ by'; bz; bw ] 3000 in
  (* move g's copy of the shared attribute onto f's block, and back *)
  let p_in = Rep.make_perm m (Fdd.perm_pairs m by' by) in
  let p_out = Rep.make_perm m (Fdd.perm_pairs m by by') in
  let cube_shared = M.addref m (Fdd.domain_cube m by) in
  let cube_w = M.addref m (Fdd.domain_cube m bw) in
  (m, f, f2, g, g3, by', bz, p_in, p_out, cube_shared, cube_w)

type micro = { name : string; ops : float }

let kernel_microbench () =
  let m, f, f2, g, g3, _, _, p_in, p_out, cube_shared, cube_w =
    kernel_fixture ()
  in
  ignore p_out;
  (* correctness gate: never report timings for wrong answers *)
  let gate a b = if a <> b then failwith "microbench equivalence violated" in
  gate
    (Rep.relprod_replace m f g p_in M.one)
    (Ops.band m f (Rep.replace m g p_in));
  gate
    (Rep.relprod_replace m f g p_in cube_shared)
    (Quant.relprod m f (Rep.replace m g p_in) cube_shared);
  gate
    (Rep.replace_exist m g3 p_in cube_w)
    (Rep.replace m (Quant.exist m g3 cube_w) p_in);
  let bench name op =
    {
      name;
      ops =
        ops_per_sec (fun () ->
            M.clear_caches m;
            op ());
    }
  in
  [
    bench "band" (fun () -> Ops.band m f f2);
    bench "relprod" (fun () -> Quant.relprod m f f2 cube_shared);
    bench "replace" (fun () -> Rep.replace m g p_in);
    bench "join_fused" (fun () -> Rep.relprod_replace m f g p_in M.one);
    bench "join_unfused" (fun () -> Ops.band m f (Rep.replace m g p_in));
    bench "compose_fused" (fun () ->
        Rep.relprod_replace m f g p_in cube_shared);
    bench "compose_unfused" (fun () ->
        Quant.relprod m f (Rep.replace m g p_in) cube_shared);
    (* project-then-relayout, the runtime's project + coerce pattern:
       quantify the trailing attribute and re-lay out the survivor *)
    bench "replace_exist_fused" (fun () ->
        Rep.replace_exist m g3 p_in cube_w);
    bench "replace_exist_unfused" (fun () ->
        Rep.replace m (Quant.exist m g3 cube_w) p_in);
  ]

type pt_result = {
  pt_name : string;
  hand_seconds : float;
  jedd_seconds : float;
  pt_tuples : int;
  pt_peak_nodes : int;
  pt_hits : int;
  pt_misses : int;
  pt_tags : M.cache_stat list;
}

let pointsto_bench name =
  let p = Workload.generate (Workload.profile_named name) in
  let b = Baseline.create p in
  let (), hand_t = wall (fun () -> Baseline.solve b) in
  let hand_tuples = List.length (Baseline.pt_tuples b) in
  Baseline.destroy b;
  let compiled = Suite.compile_one p "Points-to Analysis" in
  let inst = Driver.instantiate ~node_capacity:(1 lsl 18) compiled in
  Jedd_analyses.Pointsto.load_facts inst p;
  let (), jedd_t = wall (fun () -> Jedd_analyses.Pointsto.run inst) in
  let tuples = List.length (Jedd_analyses.Pointsto.results inst) in
  if tuples <> hand_tuples then begin
    Printf.eprintf "points-to mismatch on %s: hand %d vs jedd %d tuples\n" name
      hand_tuples tuples;
    exit 1
  end;
  let m = Jedd_relation.Universe.manager (Interp.universe inst) in
  let hits, misses, _ = M.cache_totals m in
  {
    pt_name = name;
    hand_seconds = hand_t;
    jedd_seconds = jedd_t;
    pt_tuples = tuples;
    pt_peak_nodes = M.peak_nodes m;
    pt_hits = hits;
    pt_misses = misses;
    pt_tags = M.cache_stats m;
  }

let hit_rate hits misses =
  if hits + misses = 0 then 0.0
  else float_of_int hits /. float_of_int (hits + misses)

let bench_json ?(path = "BENCH_pr1.json") () =
  let micro = kernel_microbench () in
  let pts = List.map pointsto_bench [ "javac"; "compress" ] in
  let fused, fallback = Rep.fused_stats () in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v1\",\n";
  out "  \"microbench_ops_per_sec\": {\n";
  List.iteri
    (fun i { name; ops } ->
      out "    %S: %.2f%s\n" name ops
        (if i = List.length micro - 1 then "" else ","))
    micro;
  out "  },\n";
  out "  \"pointsto\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"benchmark\": %S, \"hand_seconds\": %.4f, \"jedd_seconds\": \
         %.4f, \"tuples\": %d, \"peak_nodes\": %d, \"cache_hits\": %d, \
         \"cache_misses\": %d, \"cache_hit_rate\": %.4f}%s\n"
        r.pt_name r.hand_seconds r.jedd_seconds r.pt_tuples r.pt_peak_nodes
        r.pt_hits r.pt_misses
        (hit_rate r.pt_hits r.pt_misses)
        (if i = List.length pts - 1 then "" else ","))
    pts;
  out "  ],\n";
  (match pts with
  | last :: _ ->
    out "  \"cache_tags_jedd_pointsto_%s\": [\n" last.pt_name;
    let active =
      List.filter
        (fun (s : M.cache_stat) -> s.hits + s.misses + s.stores > 0)
        last.pt_tags
    in
    List.iteri
      (fun i (s : M.cache_stat) ->
        out
          "    {\"tag\": %S, \"hits\": %d, \"misses\": %d, \"stores\": %d, \
           \"evictions\": %d, \"hit_rate\": %.4f}%s\n"
          s.name s.hits s.misses s.stores s.evictions
          (hit_rate s.hits s.misses)
          (if i = List.length active - 1 then "" else ","))
      active;
    out "  ],\n"
  | [] -> ());
  out "  \"fused_kernel_calls\": %d,\n" fused;
  out "  \"fallback_kernel_calls\": %d\n" fallback;
  out "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* ----------------------------------------------------------------- *)
(* Reorder: points-to under a deliberately bad declaration order,     *)
(* variable-order optimizer off vs on, with the good order as control *)
(* ----------------------------------------------------------------- *)

(* V1/V2 and H1/H2 pushed to opposite ends of the order: every copy
   rule's replace and every join over the pair pays for the spread —
   the worst case §3.3.1 warns about. *)
let bad_physdom_order =
  [ "V1"; "T1"; "T2"; "T3"; "S1"; "M1"; "H1"; "M2"; "V2"; "C1"; "F1"; "H2" ]

type reorder_run = {
  rr_label : string;
  rr_seconds : float;
  rr_tuples : int;
  rr_peak : int;
  rr_live : int;
  rr_reorders : int;
  rr_swaps : int;
  rr_aborts : int;
}

let reorder_run ~label ?physdom_order ~reorder name =
  Printf.eprintf "[reorder] %s (%s)...\n%!" label name;
  let p = Workload.generate (Workload.profile_named name) in
  let source =
    Jedd_analyses.Common.preamble ?physdom_order p
    ^ Jedd_analyses.Pointsto.source
  in
  let compiled =
    match Driver.compile [ ("PointsTo.jedd", source) ] with
    | Ok c -> c
    | Error e -> failwith (Driver.error_to_string e)
  in
  let inst = Driver.instantiate ~node_capacity:(1 lsl 18) compiled in
  Jedd_analyses.Pointsto.load_facts inst p;
  let (), secs = wall (fun () -> Jedd_analyses.Pointsto.run ~reorder inst) in
  Printf.eprintf "[reorder]   ... %.2fs\n%!" secs;
  let tuples = List.length (Jedd_analyses.Pointsto.results inst) in
  let u = Interp.universe inst in
  let m = Jedd_relation.Universe.manager u in
  (match M.check_invariants m with
  | [] -> ()
  | errs ->
    List.iter
      (fun e -> Printf.eprintf "reorder invariant violation: %s\n" e)
      errs;
    exit 1);
  M.gc m;
  let engine = Jedd_relation.Universe.reorder_engine u in
  let aborts =
    List.fold_left
      (fun acc (e : Jedd_reorder.Reorder.event) -> acc + e.aborts)
      0
      (Jedd_reorder.Reorder.events engine)
  in
  {
    rr_label = label;
    rr_seconds = secs;
    rr_tuples = tuples;
    rr_peak = M.peak_nodes m;
    rr_live = M.live_nodes m;
    rr_reorders = M.reorder_count m;
    rr_swaps = M.swap_count m;
    rr_aborts = aborts;
  }

(* Sequenced with lets: OCaml evaluates list elements right-to-left,
   which would run the configurations in a confusing order. *)
let reorder_runs name =
  let good_off = reorder_run ~label:"good-order/reorder-off" ~reorder:false name in
  let good_on = reorder_run ~label:"good-order/reorder-on" ~reorder:true name in
  let bad_off =
    reorder_run ~label:"bad-order/reorder-off"
      ~physdom_order:bad_physdom_order ~reorder:false name
  in
  let bad_on =
    reorder_run ~label:"bad-order/reorder-on"
      ~physdom_order:bad_physdom_order ~reorder:true name
  in
  [ good_off; good_on; bad_off; bad_on ]

(* Workload selectable for experimentation; javac is the headline. *)
let reorder_benchmark_name () =
  match Sys.getenv_opt "JEDD_REORDER_BENCH" with
  | Some s -> s
  | None -> "javac"

let reorder_bench () =
  let name = reorder_benchmark_name () in
  line ();
  Printf.printf
    "Reorder: points-to (%s) under good vs bad declaration order\n" name;
  line ();
  let runs = reorder_runs name in
  Printf.printf "%-26s %9s %10s %10s %9s %7s %7s\n" "configuration" "seconds"
    "peak" "live" "reorders" "swaps" "aborts";
  List.iter
    (fun r ->
      Printf.printf "%-26s %9.3f %10d %10d %9d %7d %7d\n" r.rr_label
        r.rr_seconds r.rr_peak r.rr_live r.rr_reorders r.rr_swaps r.rr_aborts)
    runs;
  match runs with
  | [ _; _; off; on ] ->
    Printf.printf "bad-order peak nodes %d -> %d (%.2fx)\n" off.rr_peak
      on.rr_peak
      (float_of_int off.rr_peak /. float_of_int (max 1 on.rr_peak))
  | _ -> ()

let bench_json2 ?(path = "BENCH_pr2.json") () =
  let name = reorder_benchmark_name () in
  let runs = reorder_runs name in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v2\",\n";
  out "  \"benchmark\": %S,\n" name;
  out "  \"reorder_pointsto\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"config\": %S, \"seconds\": %.4f, \"tuples\": %d, \
         \"peak_nodes\": %d, \"live_nodes\": %d, \"reorders\": %d, \
         \"swaps\": %d, \"aborts\": %d}%s\n"
        r.rr_label r.rr_seconds r.rr_tuples r.rr_peak r.rr_live r.rr_reorders
        r.rr_swaps r.rr_aborts
        (if i = List.length runs - 1 then "" else ","))
    runs;
  out "  ]\n";
  out "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* ----------------------------------------------------------------- *)
(* Backend comparison: in-core shared node table vs the out-of-core   *)
(* streaming (extmem) engine, plus the capped-memory scenario the     *)
(* extmem backend exists for.                                         *)
(* ----------------------------------------------------------------- *)

type backend_run = {
  bk_config : string;
  bk_completed : bool;  (* false: aborted with Manager.Out_of_nodes *)
  bk_seconds : float;
  bk_tuples : int;
  bk_peak_nodes : int;  (* in-core node-table peak; tiny under extmem *)
  bk_spill_runs : int;
  bk_spilled_bytes : int;
  bk_pq_peak_bytes : int;
  bk_io_millis : float;
}

(* One points-to solve on the named workload under the given backend.
   Extmem byte budgets are set through the environment so Store.create
   picks them up; restored afterwards so other bench commands are
   unaffected. *)
let backend_pointsto ~config ~backend ?node_limit ?pq_bytes ?mem_nodes profile =
  Printf.eprintf "[backend] %s (%s)...\n%!" config profile.Workload.name;
  let set_env k = function
    | Some v ->
      let old = Sys.getenv_opt k in
      Unix.putenv k (string_of_int v);
      fun () -> Unix.putenv k (match old with Some s -> s | None -> "")
    | None -> fun () -> ()
  in
  let restore_pq = set_env "JEDD_EXTMEM_PQ_BYTES" pq_bytes in
  let restore_mem = set_env "JEDD_EXTMEM_MEM_NODES" mem_nodes in
  Fun.protect
    ~finally:(fun () ->
      restore_pq ();
      restore_mem ())
    (fun () ->
      let p = Workload.generate profile in
      let compiled = Suite.compile_one p "Points-to Analysis" in
      let inst =
        Driver.instantiate ~node_capacity:(1 lsl 18) ?node_limit ~backend
          compiled
      in
      let u = Interp.universe inst in
      let finish completed secs tuples =
        let m = Jedd_relation.Universe.manager u in
        let runs, bytes, pq_peak, io =
          match Jedd_relation.Backend.store (Jedd_relation.Universe.backend u) with
          | Some st ->
            Jedd_extmem.Store.
              (spill_runs st, spilled_bytes st, pq_peak_bytes st, io_millis st)
          | None -> (0, 0, 0, 0.0)
        in
        let r =
          {
            bk_config = config;
            bk_completed = completed;
            bk_seconds = secs;
            bk_tuples = tuples;
            bk_peak_nodes = M.peak_nodes m;
            bk_spill_runs = runs;
            bk_spilled_bytes = bytes;
            bk_pq_peak_bytes = pq_peak;
            bk_io_millis = io;
          }
        in
        Jedd_relation.Universe.cleanup u;
        Printf.eprintf "[backend]   ... %s in %.2fs\n%!"
          (if completed then "completed" else "out of nodes")
          secs;
        r
      in
      let t0 = Unix.gettimeofday () in
      match
        Jedd_analyses.Pointsto.load_facts inst p;
        Jedd_analyses.Pointsto.run inst
      with
      | () ->
        let secs = Unix.gettimeofday () -. t0 in
        let tuples = List.length (Jedd_analyses.Pointsto.results inst) in
        finish true secs tuples
      | exception M.Out_of_nodes ->
        finish false (Unix.gettimeofday () -. t0) 0)

(* Default workload: a mid-size profile between compress and javac-13.
   The extmem engine trades time for bounded memory (every operation is
   a file-backed sweep with no cross-operation cache, typically 1-2
   orders of magnitude slower), so the paper-sized javac/javac-13
   profiles take tens of minutes out of core — selectable via
   JEDD_BACKEND_BENCH for patient runs, but not a sane default for a
   regeneratable benchmark. *)
let backend_mid_profile =
  {
    Workload.name = "pointsto-mid";
    classes = 60;
    sigs_per_class = 3;
    methods_scale = 2;
    vars_per_method = 5;
    heap_per_method = 2;
    fields = 24;
    assign_factor = 7;
    field_ops_per_method = 2;
    calls_per_method = 2;
    seed = 77;
  }

let backend_benchmark_profile () =
  match Sys.getenv_opt "JEDD_BACKEND_BENCH" with
  | Some "tiny" -> Workload.tiny
  | Some s -> Workload.profile_named s
  | None -> backend_mid_profile

let backend_runs () =
  let profile = backend_benchmark_profile () in
  let name = profile.Workload.name in
  let incore =
    backend_pointsto ~config:"incore/unlimited" ~backend:`Incore profile
  in
  (* Cap the node table well below the in-core peak: the in-core run
     must abort cleanly, the extmem run under the same cap must finish
     with the identical relation. *)
  let node_limit = max 4096 (incore.bk_peak_nodes / 4) in
  let capped =
    backend_pointsto ~config:"incore/capped" ~backend:`Incore ~node_limit
      profile
  in
  (* Budgets low enough to force priority-queue spills to disk. *)
  let extmem =
    backend_pointsto ~config:"extmem/capped" ~backend:`Extmem ~node_limit
      ~pq_bytes:16384 ~mem_nodes:2048 profile
  in
  (name, node_limit, [ incore; capped; extmem ], incore, capped, extmem)

let backend_bench () =
  let name, node_limit, runs, incore, capped, extmem = backend_runs () in
  line ();
  Printf.printf
    "Backend: points-to (%s), in-core vs out-of-core streaming (extmem)\n"
    name;
  line ();
  Printf.printf "%-18s %9s %9s %10s %7s %12s %10s %9s\n" "configuration"
    "seconds" "tuples" "peak" "runs" "spilled(B)" "pq-peak(B)" "io(ms)";
  List.iter
    (fun r ->
      Printf.printf "%-18s %9s %9d %10d %7d %12d %10d %9.1f\n" r.bk_config
        (if r.bk_completed then Printf.sprintf "%.3f" r.bk_seconds
         else "aborted")
        r.bk_tuples r.bk_peak_nodes r.bk_spill_runs r.bk_spilled_bytes
        r.bk_pq_peak_bytes r.bk_io_millis)
    runs;
  Printf.printf "node limit for the capped runs: %d nodes\n" node_limit;
  if capped.bk_completed then begin
    Printf.printf "FAIL: capped in-core run should have hit Out_of_nodes\n";
    exit 1
  end;
  if (not extmem.bk_completed) || extmem.bk_tuples <> incore.bk_tuples
  then begin
    Printf.printf "FAIL: extmem run did not reproduce the in-core result\n";
    exit 1
  end;
  Printf.printf
    "extmem completed under the cap with the identical %d-tuple relation\n"
    extmem.bk_tuples

let bench_json3 ?(path = "BENCH_pr3.json") () =
  let name, node_limit, runs, incore, capped, extmem = backend_runs () in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v3\",\n";
  out "  \"benchmark\": %S,\n" name;
  out "  \"node_limit\": %d,\n" node_limit;
  out "  \"backend_pointsto\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"config\": %S, \"completed\": %b, \"seconds\": %.4f, \
         \"tuples\": %d, \"peak_nodes\": %d, \"spill_runs\": %d, \
         \"spilled_bytes\": %d, \"pq_peak_bytes\": %d, \"io_millis\": \
         %.1f}%s\n"
        r.bk_config r.bk_completed r.bk_seconds r.bk_tuples r.bk_peak_nodes
        r.bk_spill_runs r.bk_spilled_bytes r.bk_pq_peak_bytes r.bk_io_millis
        (if i = List.length runs - 1 then "" else ","))
    runs;
  out "  ],\n";
  out "  \"capped_incore_aborted\": %b,\n" (not capped.bk_completed);
  out "  \"extmem_matches_incore\": %b\n"
    (extmem.bk_completed && extmem.bk_tuples = incore.bk_tuples);
  out "}\n";
  if capped.bk_completed then begin
    Printf.eprintf "json3: capped in-core run should have hit Out_of_nodes\n";
    exit 1
  end;
  if (not extmem.bk_completed) || extmem.bk_tuples <> incore.bk_tuples
  then begin
    Printf.eprintf "json3: extmem run did not reproduce the in-core result\n";
    exit 1
  end;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* ----------------------------------------------------------------- *)
(* BENCH_pr5.json: the jeddd warm-start story.  Cold = run the full   *)
(* combined pipeline and answer one points-to query; warm = load the  *)
(* snapshot the cold run saved and answer the same query; server =    *)
(* per-query round-trip latency against a live jeddd socket.  The     *)
(* acceptance bar is cold/warm >= 5x.                                 *)
(* ----------------------------------------------------------------- *)

let bench_json5 ?(path = "BENCH_pr5.json") () =
  let bench_name =
    match Sys.getenv_opt "JEDD_BENCH_WORKLOAD" with
    | Some n -> n
    | None -> "javac"
  in
  let p = Workload.generate (Workload.profile_named bench_name) in
  let snap_path = Filename.temp_file "jedd-bench" ".snap" in
  (* cold: compute the fixed point, persist it, answer pointsto(var) *)
  let module Snapshot = Jedd_store.Snapshot in
  let module R = Jedd_relation.Relation in
  let query_rel snap var =
    match Snapshot.find_relation snap "PointsTo.pt" with
    | None -> failwith "snapshot lacks PointsTo.pt"
    | Some pt ->
      let var_attr, heap_attr =
        match Jedd_relation.Schema.attrs (R.schema pt) with
        | [ a; b ] ->
          if Jedd_relation.Attribute.name a = "var" then (a, b) else (b, a)
        | _ -> failwith "PointsTo.pt is not binary"
      in
      let sel = R.select pt [ (var_attr, var) ] in
      let heaps = R.project_away sel [ var_attr ] in
      ignore heap_attr;
      let n = R.size heaps in
      R.release sel;
      R.release heaps;
      n
  in
  let (snap_cold, query_var, cold_heaps), cold_s =
    wall (fun () ->
        let inst, r = Suite.run_combined p in
        let snap = Suite.snapshot ~meta:[ ("workload", bench_name) ] inst in
        Snapshot.save_file snap_path snap;
        (* a var that actually points somewhere, so the query is real *)
        let query_var =
          match r.Suite.pt with (v :: _) :: _ -> v | _ -> 0
        in
        (snap, query_var, query_rel snap query_var))
  in
  let pt_tuples =
    match Snapshot.find_relation snap_cold "PointsTo.pt" with
    | Some pt -> R.size pt
    | None -> 0
  in
  (* warm: load the snapshot, answer the same query; no fixed point *)
  let (warm_heaps, warm_relations), warm_s =
    wall (fun () ->
        let snap = Snapshot.load_file snap_path in
        (query_rel snap query_var, List.length snap.Snapshot.relations))
  in
  (* server: round-trip latency for the same query over the socket *)
  let module Server = Jedd_server.Server in
  let module Client = Jedd_server.Client in
  let socket_path = Filename.temp_file "jedd-bench" ".sock" in
  Sys.remove socket_path;
  let server = Server.create ~socket_path snap_cold in
  let server_thread = Thread.create Server.serve server in
  let c = Client.connect socket_path in
  let n_queries = 200 in
  let lat = Array.make n_queries 0.0 in
  for i = 0 to n_queries - 1 do
    let (_ : int list), dt = wall (fun () -> Client.pointsto c query_var) in
    lat.(i) <- dt
  done;
  Client.shutdown c;
  Client.close c;
  Thread.join server_thread;
  Array.sort compare lat;
  let mean = Array.fold_left ( +. ) 0.0 lat /. float_of_int n_queries in
  let p95 = lat.(n_queries * 95 / 100) in
  let speedup = cold_s /. warm_s in
  let snap_bytes = (Unix.stat snap_path).Unix.st_size in
  Sys.remove snap_path;
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v5\",\n";
  out "  \"benchmark\": %S,\n" bench_name;
  out "  \"query_var\": %d,\n" query_var;
  out "  \"pt_tuples\": %d,\n" pt_tuples;
  out "  \"snapshot_bytes\": %d,\n" snap_bytes;
  out "  \"snapshot_relations\": %d,\n" warm_relations;
  out "  \"cold_seconds\": %.4f,\n" cold_s;
  out "  \"warm_seconds\": %.4f,\n" warm_s;
  out "  \"warm_speedup\": %.1f,\n" speedup;
  out "  \"results_match\": %b,\n" (cold_heaps = warm_heaps);
  out "  \"server_query_mean_ms\": %.3f,\n" (mean *. 1000.);
  out "  \"server_query_p95_ms\": %.3f,\n" (p95 *. 1000.);
  out "  \"server_queries\": %d\n" n_queries;
  out "}\n";
  if cold_heaps <> warm_heaps then begin
    Printf.eprintf "json5: warm-start query disagrees with cold (%d vs %d)\n"
      cold_heaps warm_heaps;
    exit 1
  end;
  if speedup < 5.0 then begin
    Printf.eprintf "json5: warm-start speedup %.1fx is below the 5x bar\n"
      speedup;
    exit 1
  end;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* ----------------------------------------------------------------- *)
(* Parallel scaling: points-to hot path and the combined suite at     *)
(* 1/2/4/8 domains, with bit-identical-results gates (PR 6)           *)
(* ----------------------------------------------------------------- *)

type par_run = {
  pr_jobs : int;
  pr_seconds : float; (* best of [par_repeats] *)
  pr_all_seconds : float list;
  pr_forks : int;
  pr_steals : int;
  pr_stw : int;
  pr_barrier_waits : int;
  pr_chunk_refills : int;
  pr_domains_used : int;
}

let par_jobs_curve = [ 1; 2; 4; 8 ]
let par_repeats = 3
let host_cpus () = Domain.recommended_domain_count ()

(* Table 2's hand-coded solver with every relprod/union on the
   work-stealing pool.  The timed region is the solve only; the gate is
   exact tuple-set equality with the sequential solver. *)
let pointsto_par_runs name =
  let p = Workload.generate (Workload.profile_named name) in
  let bseq = Baseline.create p in
  Baseline.solve bseq;
  let ref_tuples = Baseline.pt_tuples bseq in
  Baseline.destroy bseq;
  let run jobs =
    let times = ref [] in
    let forks = ref 0 and steals = ref 0 in
    let stw = ref 0 and waits = ref 0 and refills = ref 0 and doms = ref 0 in
    for _ = 1 to par_repeats do
      let b = Baseline.create p in
      let (f, s), t = wall (fun () -> Baseline.solve_par ~jobs b) in
      if Baseline.pt_tuples b <> ref_tuples then begin
        Printf.eprintf
          "json6: parallel points-to (jobs=%d) differs from sequential\n" jobs;
        exit 1
      end;
      let ps = M.par_stats (Baseline.manager b) in
      forks := f;
      steals := s;
      stw := ps.M.par_stw_sections;
      waits := ps.M.par_barrier_waits;
      refills := ps.M.par_chunk_refills;
      doms := ps.M.par_domains;
      Baseline.destroy b;
      times := t :: !times
    done;
    {
      pr_jobs = jobs;
      pr_seconds = List.fold_left min infinity !times;
      pr_all_seconds = List.rev !times;
      pr_forks = !forks;
      pr_steals = !steals;
      pr_stw = !stw;
      pr_barrier_waits = !waits;
      pr_chunk_refills = !refills;
      pr_domains_used = !doms;
    }
  in
  List.map run par_jobs_curve

(* The five Figure 2 analyses end to end, stage-parallel
   ({Hierarchy ∥ Points-to} → Vcall → {Call Graph ∥ Side Effects}); the
   gate is equality of all five result lists with the jobs=1 run. *)
let combined_par_runs name =
  let p = Workload.generate (Workload.profile_named name) in
  let results_of (r : Suite.results) =
    (r.Suite.subtypes, r.Suite.pt, r.Suite.resolved, r.Suite.reachable,
     r.Suite.side_effects)
  in
  let reference = ref None in
  let run jobs =
    let times = ref [] in
    let stw = ref 0 and waits = ref 0 and refills = ref 0 and doms = ref 0 in
    for _ = 1 to par_repeats do
      let (inst, r), t = wall (fun () -> Suite.run_combined ~jobs p) in
      (match !reference with
      | None -> reference := Some (results_of r)
      | Some rr ->
        if results_of r <> rr then begin
          Printf.eprintf
            "json6: combined suite (jobs=%d) differs from jobs=1\n" jobs;
          exit 1
        end);
      let m = Jedd_relation.Universe.manager (Interp.universe inst) in
      let ps = M.par_stats m in
      stw := ps.M.par_stw_sections;
      waits := ps.M.par_barrier_waits;
      refills := ps.M.par_chunk_refills;
      doms := ps.M.par_domains;
      times := t :: !times
    done;
    {
      pr_jobs = jobs;
      pr_seconds = List.fold_left min infinity !times;
      pr_all_seconds = List.rev !times;
      pr_forks = 0;
      pr_steals = 0;
      pr_stw = !stw;
      pr_barrier_waits = !waits;
      pr_chunk_refills = !refills;
      pr_domains_used = !doms;
    }
  in
  List.map run par_jobs_curve

let par_benchmark_name () = "javac"

let speedup_at runs jobs =
  let base = (List.find (fun r -> r.pr_jobs = 1) runs).pr_seconds in
  match List.find_opt (fun r -> r.pr_jobs = jobs) runs with
  | Some r when r.pr_seconds > 0.0 -> base /. r.pr_seconds
  | _ -> 0.0

let parallel_bench () =
  line ();
  let name = par_benchmark_name () in
  Printf.printf
    "Parallel scaling on %s (host cpus: %d; best of %d runs per point)\n"
    name (host_cpus ()) par_repeats;
  let show title runs =
    Printf.printf "%s\n" title;
    Printf.printf
      "  %5s %10s %9s %9s %9s %6s %8s %8s\n"
      "jobs" "seconds" "speedup" "forks" "steals" "stw" "waits" "refills";
    List.iter
      (fun r ->
        Printf.printf "  %5d %10.3f %8.2fx %9d %9d %6d %8d %8d\n" r.pr_jobs
          r.pr_seconds
          (speedup_at runs r.pr_jobs)
          r.pr_forks r.pr_steals r.pr_stw r.pr_barrier_waits
          r.pr_chunk_refills)
      runs
  in
  show "hand-coded points-to join/compose (solve_par):"
    (pointsto_par_runs name);
  show "combined five-analysis suite (run_combined ~jobs):"
    (combined_par_runs name)

let bench_json6 ?(path = "BENCH_pr6.json") () =
  let name = par_benchmark_name () in
  let cpus = host_cpus () in
  let pts = pointsto_par_runs name in
  let comb = combined_par_runs name in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let emit_runs runs =
    List.iteri
      (fun i r ->
        out
          "    {\"jobs\": %d, \"seconds\": %.4f, \"speedup\": %.3f, \
           \"runs\": [%s], \"forks\": %d, \"steals\": %d, \
           \"stw_sections\": %d, \"barrier_waits\": %d, \
           \"chunk_refills\": %d, \"domains_used\": %d}%s\n"
          r.pr_jobs r.pr_seconds
          (speedup_at runs r.pr_jobs)
          (String.concat ", "
             (List.map (Printf.sprintf "%.4f") r.pr_all_seconds))
          r.pr_forks r.pr_steals r.pr_stw r.pr_barrier_waits
          r.pr_chunk_refills r.pr_domains_used
          (if i = List.length runs - 1 then "" else ","))
      runs
  in
  let pt4 = speedup_at pts 4 and comb4 = speedup_at comb 4 in
  let gate_asserted = cpus >= 4 in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v6\",\n";
  out "  \"benchmark\": %S,\n" name;
  out "  \"host_cpus\": %d,\n" cpus;
  out "  \"repeats\": %d,\n" par_repeats;
  out "  \"pointsto_solve_par\": [\n";
  emit_runs pts;
  out "  ],\n";
  out "  \"combined_suite\": [\n";
  emit_runs comb;
  out "  ],\n";
  out "  \"results_identical\": true,\n";
  out "  \"speedup_gate\": {\"required_at_4_domains\": 2.0, \
       \"asserted\": %b, \"pointsto_speedup_at_4\": %.3f, \
       \"combined_speedup_at_4\": %.3f}\n"
    gate_asserted pt4 comb4;
  out "}\n";
  (* The curves only rise with real cores under them: on a single-core
     host the gate degrades to the (unconditional) identity checks. *)
  if gate_asserted && pt4 < 2.0 && comb4 < 2.0 then begin
    Printf.eprintf
      "json6: speedup at 4 domains below the 2x bar on a %d-cpu host \
       (pointsto %.2fx, combined %.2fx)\n"
      cpus pt4 comb4;
    exit 1
  end;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* ----------------------------------------------------------------- *)
(* BENCH_pr7.json: the serving story.  One snapshot on disk behind    *)
(* the jeddd-serve front end; a frozen worker sweep at 1/2/4/8        *)
(* domains under closed-loop multi-client load; a frozen-vs-          *)
(* refcounted single-worker comparison on the same load; and a        *)
(* three-transport differential gate (bit-identical responses over    *)
(* Unix, TCP and HTTP, at every worker count, against workers=1).     *)
(* ----------------------------------------------------------------- *)

module Serve = Jedd_serve.Serve
module SJson = Jedd_server.Json

let serve_fixture () =
  let bench_name =
    match Sys.getenv_opt "JEDD_BENCH_WORKLOAD" with
    | Some n -> n
    | None -> "javac"
  in
  let p = Workload.generate (Workload.profile_named bench_name) in
  let inst, r = Suite.run_combined p in
  let snap = Suite.snapshot ~meta:[ ("workload", bench_name) ] inst in
  let snap_path = Filename.temp_file "jedd-serve" ".snap" in
  Jedd_store.Snapshot.save_file snap_path snap;
  let hash = Digest.to_hex (Digest.file snap_path) in
  (* distinct vars that actually point somewhere, so queries are real *)
  let seen = Hashtbl.create 16 in
  let vars =
    List.filter_map
      (function
        | v :: _ when not (Hashtbl.mem seen v) ->
          Hashtbl.add seen v ();
          Some v
        | _ -> None)
      r.Suite.pt
  in
  let vars = if vars = [] then [ 0 ] else vars in
  (bench_name, snap_path, hash, Array.of_list vars)

(* Start a serve front end on all three transports, run [f], always
   stop the server.  Each call loads its own universe from the
   snapshot file, so freeze (which is one-way) never leaks between
   runs. *)
let with_server ~workers ~frozen snap_path hash f =
  let snap = Jedd_store.Snapshot.load_file ~freeze:frozen snap_path in
  let sock = Filename.temp_file "jedd-serve" ".sock" in
  Sys.remove sock;
  let config =
    {
      Serve.default_config with
      unix_path = Some sock;
      tcp = Some ("127.0.0.1", 0);
      http = Some ("127.0.0.1", 0);
      workers;
    }
  in
  let server = Serve.create ~config ~universe_hash:hash snap in
  let th = Thread.create Serve.run server in
  let tcp_port =
    match Serve.tcp_port server with Some p -> p | None -> 0
  in
  let http_port =
    match Serve.http_port server with Some p -> p | None -> 0
  in
  let finally () =
    Serve.stop server;
    Thread.join th;
    if Sys.file_exists sock then Sys.remove sock
  in
  match f ~sock ~tcp_port ~http_port with
  | v ->
    finally ();
    v
  | exception e ->
    finally ();
    raise e

(* Deterministic read-only queries for the differential gate; stats is
   deliberately excluded (uptime and counters vary). *)
let differential_queries vars =
  let q verb fields = SJson.Obj (("verb", SJson.String verb) :: fields) in
  [ q "ping" []; q "version" []; q "relations" [] ]
  @ (Array.to_list (Array.sub vars 0 (min 4 (Array.length vars)))
    |> List.map (fun v -> q "pointsto" [ ("var", SJson.Int v) ]))
  @ [ q "count" [ ("rel", SJson.String "PointsTo.pt") ] ]

let transport_responses ~sock ~tcp_port ~http_port queries =
  let module C = Jedd_server.Client in
  let module H = Jedd_serve.Http in
  let over connect is_http =
    let c = connect () in
    let rs =
      List.map
        (fun query ->
          let r =
            if is_http then
              H.client_request ~ic:c.C.ic ~oc:c.C.oc query
            else C.request c query
          in
          SJson.to_string r)
        queries
    in
    C.close c;
    rs
  in
  [
    ("unix", over (fun () -> C.connect ~retries:10 sock) false);
    ( "tcp",
      over (fun () -> C.connect_tcp ~retries:10 "127.0.0.1" tcp_port) false );
    ( "http",
      over (fun () -> C.connect_tcp ~retries:10 "127.0.0.1" http_port) true );
  ]

let serve_cache_stats ~sock =
  let module C = Jedd_server.Client in
  let c = C.connect ~retries:10 sock in
  let resp = C.request c (SJson.Obj [ ("verb", SJson.String "stats") ]) in
  C.close c;
  let field name =
    match SJson.member "result_cache" resp with
    | Some rc -> (
      match SJson.member name rc with Some (SJson.Int n) -> n | _ -> 0)
    | None -> 0
  in
  (field "hits", field "misses")

(* The standing load: mostly pointsto over a rotating var set (so the
   result cache sees repeats), one count in four. *)
let serve_load ~transport ~clients ~requests vars =
  let mk _i j =
    if j mod 4 = 3 then
      SJson.Obj
        [
          ("verb", SJson.String "count");
          ("rel", SJson.String "PointsTo.pt");
        ]
    else
      SJson.Obj
        [
          ("verb", SJson.String "pointsto");
          ("var", SJson.Int vars.(j mod Array.length vars));
        ]
  in
  Loadgen.run
    {
      Loadgen.transport;
      clients;
      requests_per_client = requests;
      rate_per_client = None;
      make_request = mk;
    }

let lat_ms r q = float_of_int (Loadgen.percentile_us r q) /. 1000.0

let require_clean what (r : Loadgen.result) =
  if r.Loadgen.transport_errors > 0 || r.Loadgen.app_errors > 0 then begin
    Printf.eprintf
      "%s: load run had errors (transport %d, application %d, ok %d/%d)\n"
      what r.Loadgen.transport_errors r.Loadgen.app_errors r.Loadgen.ok
      r.Loadgen.sent;
    exit 1
  end

(* Small-scale CI smoke: a warm frozen snapshot, 2 workers, 50
   concurrent TCP clients.  Zero errors and a warm result cache or the
   job fails. *)
let bench_load () =
  let bench_name, snap_path, hash, vars = serve_fixture () in
  let clients = 50 and requests = 20 in
  let result, hits, misses =
    with_server ~workers:2 ~frozen:true snap_path hash
      (fun ~sock ~tcp_port ~http_port ->
        ignore http_port;
        let r =
          serve_load
            ~transport:(Loadgen.Tcp ("127.0.0.1", tcp_port))
            ~clients ~requests vars
        in
        let hits, misses = serve_cache_stats ~sock in
        (r, hits, misses))
  in
  Sys.remove snap_path;
  require_clean "load-smoke" result;
  if hits = 0 then begin
    Printf.eprintf
      "load-smoke: result cache never hit (misses %d) under a repeating \
       workload\n"
      misses;
    exit 1
  end;
  Printf.printf
    "load smoke: OK (%s, %d clients x %d reqs, %d ok, %.0f req/s, p50 \
     %.2fms p99 %.2fms, cache %d/%d hits)\n"
    bench_name clients requests result.Loadgen.ok
    (Loadgen.throughput_rps result)
    (lat_ms result 0.50) (lat_ms result 0.99) hits (hits + misses)

let bench_json7 ?(path = "BENCH_pr7.json") () =
  let bench_name, snap_path, hash, vars = serve_fixture () in
  let cpus = host_cpus () in
  let clients = 32 and requests = 50 in
  let queries = differential_queries vars in
  let reference = ref None in
  let differential_ok = ref true in
  let sweep =
    List.map
      (fun workers ->
        with_server ~workers ~frozen:true snap_path hash
          (fun ~sock ~tcp_port ~http_port ->
            (* differential first, on an idle server *)
            let by_transport =
              transport_responses ~sock ~tcp_port ~http_port queries
            in
            (match !reference with
            | None ->
              reference := Some (List.assoc "unix" by_transport)
            | Some _ -> ());
            let expect = Option.get !reference in
            List.iter
              (fun (tname, rs) ->
                if rs <> expect then begin
                  Printf.eprintf
                    "json7: %s responses at %d workers differ from the \
                     single-worker reference\n"
                    tname workers;
                  differential_ok := false
                end)
              by_transport;
            let r =
              serve_load
                ~transport:(Loadgen.Tcp ("127.0.0.1", tcp_port))
                ~clients ~requests vars
            in
            require_clean (Printf.sprintf "json7 (workers=%d)" workers) r;
            let hits, misses = serve_cache_stats ~sock in
            (workers, r, hits, misses)))
      par_jobs_curve
  in
  if not !differential_ok then exit 1;
  (* frozen vs refcounted, single worker, same load over TCP *)
  let mode_run frozen =
    with_server ~workers:1 ~frozen snap_path hash
      (fun ~sock ~tcp_port ~http_port ->
        ignore sock;
        ignore http_port;
        let r =
          serve_load
            ~transport:(Loadgen.Tcp ("127.0.0.1", tcp_port))
            ~clients ~requests vars
        in
        require_clean
          (Printf.sprintf "json7 (%s)"
             (if frozen then "frozen" else "refcounted"))
          r;
        r)
  in
  let frozen_r = mode_run true in
  let refc_r = mode_run false in
  (* one HTTP datapoint so BENCH_pr7 covers that front end too *)
  let http_r =
    with_server ~workers:2 ~frozen:true snap_path hash
      (fun ~sock ~tcp_port ~http_port ->
        ignore sock;
        ignore tcp_port;
        let r =
          serve_load
            ~transport:(Loadgen.Http_t ("127.0.0.1", http_port))
            ~clients:16 ~requests:25 vars
        in
        require_clean "json7 (http)" r;
        r)
  in
  Sys.remove snap_path;
  let tput (r : Loadgen.result) = Loadgen.throughput_rps r in
  let run_json (r : Loadgen.result) =
    Printf.sprintf
      "\"ok\": %d, \"sent\": %d, \"wall_s\": %.3f, \"throughput_rps\": \
       %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f"
      r.Loadgen.ok r.Loadgen.sent r.Loadgen.wall_s (tput r)
      (lat_ms r 0.50) (lat_ms r 0.95) (lat_ms r 0.99)
  in
  let base_tput =
    match sweep with (1, r, _, _) :: _ -> tput r | _ -> 0.0
  in
  let tput_at w =
    match List.find_opt (fun (w', _, _, _) -> w' = w) sweep with
    | Some (_, r, _, _) -> tput r
    | None -> 0.0
  in
  let scale4 = if base_tput > 0.0 then tput_at 4 /. base_tput else 0.0 in
  let gate_asserted = cpus >= 4 in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v7\",\n";
  out "  \"benchmark\": %S,\n" bench_name;
  out "  \"host_cpus\": %d,\n" cpus;
  out "  \"snapshot_hash\": %S,\n" hash;
  out "  \"clients\": %d,\n" clients;
  out "  \"requests_per_client\": %d,\n" requests;
  out "  \"worker_sweep\": [\n";
  List.iteri
    (fun i (workers, r, hits, misses) ->
      let total = hits + misses in
      out
        "    {\"workers\": %d, %s, \"cache_hits\": %d, \"cache_misses\": \
         %d, \"cache_hit_rate\": %.3f}%s\n"
        workers (run_json r) hits misses
        (if total = 0 then 0.0 else float_of_int hits /. float_of_int total)
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  out "  ],\n";
  out "  \"frozen_single_worker\": {%s},\n" (run_json frozen_r);
  out "  \"refcounted_single_worker\": {%s},\n" (run_json refc_r);
  out "  \"frozen_vs_refcounted_speedup\": %.3f,\n"
    (if tput refc_r > 0.0 then tput frozen_r /. tput refc_r else 0.0);
  out "  \"http_two_workers\": {%s},\n" (run_json http_r);
  out "  \"differential_identical\": true,\n";
  out
    "  \"scaling_gate\": {\"required_at_4_workers\": 1.2, \"asserted\": \
     %b, \"throughput_ratio_at_4\": %.3f}\n"
    gate_asserted scale4;
  out "}\n";
  (* more workers only help with real cores under them *)
  if gate_asserted && scale4 < 1.2 then begin
    Printf.eprintf
      "json7: throughput at 4 workers is %.2fx of 1 worker on a %d-cpu \
       host (bar: 1.2x)\n"
      scale4 cpus;
    exit 1
  end;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* ----------------------------------------------------------------- *)
(* BENCH_pr8.json: incremental re-solve cost per edit (PR 8)          *)
(* ----------------------------------------------------------------- *)

(* A live session absorbs a stream of program edits; after every edit
   the incremental fixed point must be tuple-for-tuple the one a
   from-scratch solve of the edited program reaches.  The bench
   measures the cost per edit against that from-scratch solve at 1, 5
   and 25 accumulated edits, and the size of the differential snapshot
   (Delta.diff against the previous generation) after each edit.

   Gate (javac workload): a single added call site must re-solve at
   least 10x faster than from scratch, with identical relations. *)

let bench_json8 ?(path = "BENCH_pr8.json") () =
  let module Live = Jedd_analyses.Live in
  let module Edit = Jedd_incr.Edit in
  let module Snapshot = Jedd_store.Snapshot in
  let module Delta = Jedd_store.Delta in
  let bench_name =
    match Sys.getenv_opt "JEDD_BENCH_WORKLOAD" with
    | Some n -> n
    | None -> "javac"
  in
  let p0 = Workload.generate (Workload.profile_named bench_name) in
  (* the live session: compile with headroom, load, cold solve *)
  let session, cold_s = wall (fun () -> Live.create p0) in
  let scratch_solve p =
    let (inst, r), secs =
      wall (fun () -> Suite.run_combined ~headroom:true p)
    in
    ignore inst;
    (r, secs)
  in
  let snap_bytes () =
    Snapshot.to_bytes (Suite.snapshot (Live.inst session))
  in
  let prev_bytes = ref (snap_bytes ()) in
  let rng = Random.State.make [| 0x8edd; 8 |] in
  (* edit #1 is the gate's single new call site; the rest of the
     stream is deterministic random additions *)
  let next_edit i =
    if i = 1 then Edit.Add_callsite { recv = 0; signature = 0; in_method = 0 }
    else Edit.random ~removals:false rng (Live.program session)
  in
  let batch_points = [ 1; 5; 25 ] in
  let max_edits = List.fold_left max 0 batch_points in
  let per_edit = ref [] in
  let batches = ref [] in
  let cum_incr_s = ref 0.0 in
  let all_identical = ref true in
  for i = 1 to max_edits do
    let e = next_edit i in
    let stats, secs = wall (fun () -> Live.update session e) in
    cum_incr_s := !cum_incr_s +. secs;
    (* differential snapshot against the previous generation *)
    let bytes = snap_bytes () in
    let d =
      Delta.diff
        ~meta:[ ("edit", Edit.describe e) ]
        ~base:!prev_bytes ~next:bytes ()
    in
    let delta_bytes = String.length (Delta.to_bytes d) in
    prev_bytes := bytes;
    per_edit :=
      ( i,
        Edit.describe e,
        Live.mode_to_string stats.Live.mode,
        secs,
        List.length d.Delta.changed,
        delta_bytes,
        String.length bytes )
      :: !per_edit;
    if List.mem i batch_points then begin
      let r_scratch, scratch_s = scratch_solve (Live.program session) in
      let identical = Live.results session = r_scratch in
      if not identical then all_identical := false;
      batches := (i, !cum_incr_s, scratch_s, identical) :: !batches
    end
  done;
  let per_edit = List.rev !per_edit in
  let batches = List.rev !batches in
  let ms s = s *. 1000.0 in
  (* gate: the single-callsite batch point *)
  let gate_edits, gate_incr_s, gate_scratch_s, gate_identical =
    match batches with b :: _ -> b | [] -> (0, 1.0, 0.0, false)
  in
  ignore gate_edits;
  let gate_speedup =
    if gate_incr_s > 0.0 then gate_scratch_s /. gate_incr_s else 0.0
  in
  let gate_asserted = bench_name = "javac" in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v8\",\n";
  out "  \"benchmark\": %S,\n" bench_name;
  out "  \"host_cpus\": %d,\n" (host_cpus ());
  out "  \"cold_solve_ms\": %.1f,\n" (ms cold_s);
  out "  \"edits\": [\n";
  List.iteri
    (fun k (i, desc, mode, secs, changed, dbytes, fbytes) ->
      out
        "    {\"edit\": %d, \"op\": %S, \"mode\": %S, \"incr_ms\": %.2f, \
         \"delta_changed_relations\": %d, \"delta_bytes\": %d, \
         \"full_snapshot_bytes\": %d, \"delta_fraction\": %.4f}%s\n"
        i desc mode (ms secs) changed dbytes fbytes
        (float_of_int dbytes /. float_of_int fbytes)
        (if k = List.length per_edit - 1 then "" else ","))
    per_edit;
  out "  ],\n";
  out "  \"batches\": [\n";
  List.iteri
    (fun k (n, incr_s, scratch_s, identical) ->
      let per = ms incr_s /. float_of_int n in
      out
        "    {\"edits\": %d, \"incr_total_ms\": %.1f, \
         \"incr_per_edit_ms\": %.1f, \"scratch_ms\": %.1f, \
         \"speedup_per_edit\": %.2f, \"identical\": %b}%s\n"
        n (ms incr_s) per (ms scratch_s)
        (if per > 0.0 then ms scratch_s /. per else 0.0)
        identical
        (if k = List.length batches - 1 then "" else ","))
    batches;
  out "  ],\n";
  out
    "  \"single_edit_gate\": {\"required_speedup\": 10.0, \"asserted\": \
     %b, \"speedup\": %.2f, \"identical\": %b}\n"
    gate_asserted gate_speedup gate_identical;
  out "}\n";
  if not !all_identical then begin
    Printf.eprintf
      "json8: incremental relations diverged from a from-scratch solve\n";
    exit 1
  end;
  if gate_asserted && gate_speedup < 10.0 then begin
    Printf.eprintf
      "json8: single-callsite re-solve is %.2fx from-scratch on %s (bar: \
       10x)\n"
      gate_speedup bench_name;
    exit 1
  end;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* ----------------------------------------------------------------- *)
(* BENCH_pr9.json: the static cost model (PR 9).  Half 1: the        *)
(* weighted domain assignment must leave the five analyses' results  *)
(* bit-identical on javac while the generated programs execute       *)
(* strictly fewer dynamic replaces than the unweighted solve.        *)
(* Half 2: the hybrid backend on the capped points-to workload of    *)
(* json3 — must complete via its per-operation extmem fallback,      *)
(* reproduce the in-core relation, and beat pure extmem wall-clock.  *)
(* ----------------------------------------------------------------- *)

type cost_run = {
  cr_config : string;
  cr_seconds : float;  (* the five analyses, excluding compilation *)
  cr_solve_seconds : float;  (* the SAT solve(s) *)
  cr_static_replaces : int;  (* IReplace instructions emitted *)
  cr_static_weight : int;  (* emitted sites weighted by Freq — the
                              objective the weighted solve minimises *)
  cr_dyn_replaces : int;  (* replace executions during the pipeline *)
  cr_replace_millis : float;  (* wall time inside those replaces *)
  cr_results : Suite.results;
  cr_weighted : E.weighted_stats option;
}

(* The five analyses exactly as [Suite.run_all] compiles them — one
   Jedd program per analysis, the form the paper benchmarks — with a
   profiler hook on every universe counting executed replaces. *)
let cost_suite_run ~config ~optimize profile =
  let module U = Jedd_relation.Universe in
  let p = Workload.generate profile in
  Printf.eprintf "[cost] %s: compiling + running the five analyses...\n%!"
    config;
  let dyn = ref 0 and rep_ms = ref 0.0 in
  let static_replaces = ref 0 in
  let static_weight = ref 0 in
  let solve_seconds = ref 0.0 in
  let weighted = ref None in
  let stage name run =
    let compiled = Suite.compile_one ~optimize p name in
    let _, prov = Jedd_lang.Lower.lower_program_ex compiled in
    let freq = Jedd_cost.Freq.analyze compiled.Driver.tprog in
    let sites = prov.Jedd_lang.Lower.pp_replaces in
    static_replaces := !static_replaces + List.length sites;
    static_weight :=
      !static_weight
      + List.fold_left
          (fun a (s : Jedd_lang.Lower.replace_site) ->
            a + Jedd_cost.Freq.weight freq s.Jedd_lang.Lower.rs_eid)
          0 sites;
    solve_seconds :=
      !solve_seconds +. compiled.Driver.assignment.E.stats.E.solve_seconds;
    (match (compiled.Driver.weighted_stats, !weighted) with
    | Some w, None -> weighted := Some w
    | Some w, Some acc ->
      weighted :=
        Some
          {
            E.w_sites = acc.E.w_sites + w.E.w_sites;
            w_kept = acc.E.w_kept + w.E.w_kept;
            w_broken = acc.E.w_broken + w.E.w_broken;
            w_cost = acc.E.w_cost + w.E.w_cost;
            w_solves = acc.E.w_solves + w.E.w_solves;
          }
    | None, _ -> ());
    let inst = Driver.instantiate ~node_capacity:(1 lsl 18) compiled in
    let u = Interp.universe inst in
    U.set_profile_level u U.Counts;
    U.set_on_op u
      (Some
         (fun (e : U.op_event) ->
           if e.U.op = "replace" then begin
             incr dyn;
             rep_ms := !rep_ms +. e.U.millis
           end));
    let r = run inst in
    U.set_on_op u None;
    U.set_profile_level u U.Off;
    U.cleanup u;
    r
  in
  let t0 = Unix.gettimeofday () in
  let subtypes =
    stage "Hierarchy" (fun inst ->
        Jedd_analyses.Hierarchy.load_facts inst p;
        Jedd_analyses.Hierarchy.run inst;
        Jedd_analyses.Hierarchy.results inst)
  in
  let pt =
    stage "Points-to Analysis" (fun inst ->
        Jedd_analyses.Pointsto.load_facts inst p;
        Jedd_analyses.Pointsto.run inst;
        Jedd_analyses.Pointsto.results inst)
  in
  let resolved, call_edges =
    stage "Virtual Call Resolution" (fun inst ->
        Jedd_analyses.Vcall.load_facts inst p;
        Jedd_analyses.Vcall.run inst (Suite.receiver_types p pt);
        (Jedd_analyses.Vcall.results inst, Jedd_analyses.Vcall.call_edges inst))
  in
  let reachable =
    stage "Call Graph" (fun inst ->
        Jedd_analyses.Callgraph.load_facts inst p ~call_edges;
        Jedd_analyses.Callgraph.run inst;
        Jedd_analyses.Callgraph.results inst)
  in
  let side_effects =
    stage "Side-effect Analysis" (fun inst ->
        Jedd_analyses.Sideeffect.load_facts inst p ~pt ~call_edges;
        Jedd_analyses.Sideeffect.run inst;
        Jedd_analyses.Sideeffect.results inst)
  in
  let secs = Unix.gettimeofday () -. t0 in
  (match !weighted with
  | Some w ->
    Printf.eprintf
      "[cost]   weighted objective: kept %d of %d sites (broken cost %d, %d \
       solves)\n%!"
      w.E.w_kept w.E.w_sites w.E.w_cost w.E.w_solves
  | None -> ());
  Printf.eprintf
    "[cost]   ... %d static sites (weight %d), %d dynamic replaces (%.1f \
     ms) in %.2fs\n%!"
    !static_replaces !static_weight !dyn !rep_ms secs;
  {
    cr_config = config;
    cr_seconds = secs;
    cr_solve_seconds = !solve_seconds;
    cr_static_replaces = !static_replaces;
    cr_static_weight = !static_weight;
    cr_dyn_replaces = !dyn;
    cr_replace_millis = !rep_ms;
    cr_results =
      { Suite.subtypes; pt; resolved; call_edges; reachable; side_effects };
    cr_weighted = !weighted;
  }

let cost_benchmark_profile () =
  match Sys.getenv_opt "JEDD_COST_BENCH" with
  | Some "tiny" -> Workload.tiny
  | Some s -> Workload.profile_named s
  | None -> Workload.profile_named "javac"

(* The loop-hoist microbenchmark: 'x' flows from a P1-pinned field and
   is consumed three times inside a fixed-point loop at P2.  Both
   placements of the unavoidable copy satisfy the constraints — the
   unweighted solver's tie-break lands it inside the loop (one replace
   per use per iteration), the weighted objective hoists it to the
   initializer (one replace, ever).  This is the §3.3.2 "minimize the
   number of attributes represented in different physical domains"
   refinement made loop-aware. *)
let hoist_src =
  "domain D 8;\n\
   physdom P1;\n\
   physdom P2;\n\
   attribute a : D;\n\
   class Hoist {\n\
  \  <a:P1> src;\n\
  \  <a:P2> acc;\n\
  \  public void run() {\n\
  \    src = 1B;\n\
  \    <a> x = src;\n\
  \    <a> old;\n\
  \    do {\n\
  \      old = acc;\n\
  \      acc = acc | x;\n\
  \      acc = acc | x;\n\
  \      acc = acc | x;\n\
  \    } while (old != acc);\n\
  \    print acc;\n\
  \  }\n\
   }\n"

(* Compile and execute the microbenchmark, counting replace executions. *)
let hoist_run ~optimize =
  let module U = Jedd_relation.Universe in
  let weight =
    if optimize then
      Some
        (fun tprog ->
          let f = Jedd_cost.Freq.analyze tprog in
          Jedd_cost.Freq.weight f)
    else None
  in
  let compiled =
    match Driver.compile ?weight [ ("hoist.jedd", hoist_src) ] with
    | Ok c -> c
    | Error e -> failwith (Driver.error_to_string e)
  in
  let _, prov = Jedd_lang.Lower.lower_program_ex compiled in
  let static_sites = List.length prov.Jedd_lang.Lower.pp_replaces in
  let inst = Driver.instantiate compiled in
  let u = Interp.universe inst in
  let dyn = ref 0 in
  U.set_profile_level u U.Counts;
  U.set_on_op u
    (Some (fun (e : U.op_event) -> if e.U.op = "replace" then incr dyn));
  let ir = Jedd_lang.Ir_interp.create compiled inst in
  Jedd_lang.Ir_interp.set_print_hook ir (fun _ -> ());
  ignore (Jedd_lang.Ir_interp.call ir "Hoist.run" []);
  U.set_on_op u None;
  U.cleanup u;
  (static_sites, !dyn)

let bench_json9 ?(path = "BENCH_pr9.json") () =
  let profile = cost_benchmark_profile () in
  let base = cost_suite_run ~config:"unweighted" ~optimize:false profile in
  let opt = cost_suite_run ~config:"weighted" ~optimize:true profile in
  let identical =
    base.cr_results.Suite.subtypes = opt.cr_results.Suite.subtypes
    && base.cr_results.Suite.pt = opt.cr_results.Suite.pt
    && base.cr_results.Suite.resolved = opt.cr_results.Suite.resolved
    && base.cr_results.Suite.call_edges = opt.cr_results.Suite.call_edges
    && base.cr_results.Suite.reachable = opt.cr_results.Suite.reachable
    && base.cr_results.Suite.side_effects = opt.cr_results.Suite.side_effects
  in
  (* the loop-hoist microbenchmark, executed on both assignments *)
  let hoist_base_sites, hoist_base_dyn = hoist_run ~optimize:false in
  let hoist_opt_sites, hoist_opt_dyn = hoist_run ~optimize:true in
  Printf.eprintf
    "[cost] hoist microbenchmark: %d -> %d dynamic replaces (%d/%d static \
     sites)\n%!"
    hoist_base_dyn hoist_opt_dyn hoist_base_sites hoist_opt_sites;
  (* half 2: the json3 capped workload, plus a hybrid run under the
     same node cap and extmem budgets *)
  let bk_profile = backend_benchmark_profile () in
  let bk_name, node_limit, _, incore, capped, extmem = backend_runs () in
  let hybrid =
    backend_pointsto ~config:"hybrid/capped" ~backend:`Hybrid ~node_limit
      ~pq_bytes:16384 ~mem_nodes:2048 bk_profile
  in
  let bk_runs = [ incore; capped; extmem; hybrid ] in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v9\",\n";
  out "  \"benchmark\": %S,\n" profile.Workload.name;
  out "  \"weighted_assignment\": {\n";
  out "    \"runs\": [\n";
  List.iteri
    (fun i r ->
      out
        "      {\"config\": %S, \"seconds\": %.4f, \"solve_seconds\": %.4f, \
         \"static_replace_sites\": %d, \"static_replace_weight\": %d, \
         \"dynamic_replaces\": %d, \"replace_millis\": %.1f}%s\n"
        r.cr_config r.cr_seconds r.cr_solve_seconds r.cr_static_replaces
        r.cr_static_weight r.cr_dyn_replaces r.cr_replace_millis
        (if i = 1 then "" else ","))
    [ base; opt ];
  out "    ],\n";
  (match opt.cr_weighted with
  | Some w ->
    out
      "    \"weighted\": {\"sites\": %d, \"kept\": %d, \"broken\": %d, \
       \"cost\": %d, \"solves\": %d},\n"
      w.E.w_sites w.E.w_kept w.E.w_broken w.E.w_cost w.E.w_solves
  | None -> out "    \"weighted\": null,\n");
  out "    \"identical_results\": %b,\n" identical;
  out "    \"dynamic_replaces_removed\": %d,\n"
    (base.cr_dyn_replaces - opt.cr_dyn_replaces);
  out
    "    \"hoist_microbenchmark\": {\"unweighted_dynamic_replaces\": %d, \
     \"weighted_dynamic_replaces\": %d, \"unweighted_static_sites\": %d, \
     \"weighted_static_sites\": %d}\n"
    hoist_base_dyn hoist_opt_dyn hoist_base_sites hoist_opt_sites;
  out "  },\n";
  out "  \"hybrid_backend\": {\n";
  out "    \"benchmark\": %S,\n" bk_name;
  out "    \"node_limit\": %d,\n" node_limit;
  out "    \"runs\": [\n";
  List.iteri
    (fun i r ->
      out
        "      {\"config\": %S, \"completed\": %b, \"seconds\": %.4f, \
         \"tuples\": %d, \"peak_nodes\": %d, \"spill_runs\": %d, \
         \"spilled_bytes\": %d, \"io_millis\": %.1f}%s\n"
        r.bk_config r.bk_completed r.bk_seconds r.bk_tuples r.bk_peak_nodes
        r.bk_spill_runs r.bk_spilled_bytes r.bk_io_millis
        (if i = List.length bk_runs - 1 then "" else ","))
    bk_runs;
  out "    ],\n";
  out "    \"capped_incore_aborted\": %b,\n" (not capped.bk_completed);
  out "    \"hybrid_completed\": %b,\n" hybrid.bk_completed;
  out "    \"hybrid_matches_incore\": %b,\n"
    (hybrid.bk_completed && hybrid.bk_tuples = incore.bk_tuples);
  out "    \"hybrid_speedup_vs_extmem\": %.2f\n"
    (if hybrid.bk_seconds > 0.0 then extmem.bk_seconds /. hybrid.bk_seconds
     else 0.0);
  out "  }\n";
  out "}\n";
  (* gates *)
  if not identical then begin
    Printf.eprintf
      "json9: weighted assignment changed the analysis results\n";
    exit 1
  end;
  if opt.cr_dyn_replaces > base.cr_dyn_replaces then begin
    Printf.eprintf
      "json9: weighted assignment increased dynamic replaces (%d -> %d)\n"
      base.cr_dyn_replaces opt.cr_dyn_replaces;
    exit 1
  end;
  if opt.cr_static_weight > base.cr_static_weight then begin
    Printf.eprintf
      "json9: weighted assignment worsened the replace-weight objective \
       (%d -> %d)\n"
      base.cr_static_weight opt.cr_static_weight;
    exit 1
  end;
  if hoist_opt_dyn >= hoist_base_dyn then begin
    Printf.eprintf
      "json9: weighted assignment failed to hoist the loop copy (%d -> %d \
       dynamic replaces)\n"
      hoist_base_dyn hoist_opt_dyn;
    exit 1
  end;
  if not hybrid.bk_completed then begin
    Printf.eprintf
      "json9: hybrid backend aborted on the capped workload that extmem \
       completes\n";
    exit 1
  end;
  if hybrid.bk_tuples <> incore.bk_tuples then begin
    Printf.eprintf "json9: hybrid run did not reproduce the in-core result\n";
    exit 1
  end;
  if extmem.bk_completed && hybrid.bk_seconds >= extmem.bk_seconds then begin
    Printf.eprintf
      "json9: hybrid (%.2fs) did not beat pure extmem (%.2fs) on the capped \
       workload\n"
      hybrid.bk_seconds extmem.bk_seconds;
    exit 1
  end;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* ----------------------------------------------------------------- *)
(* PR 10: terminal-valued (mtbdd) backend and weighted analyses       *)
(* ----------------------------------------------------------------- *)

(* Weighted points-to on the mtbdd backend against the boolean in-core
   suite plus an explicit recount of its tuples.  Two gates make this a
   correctness benchmark as much as a timing one: the 0/1 support of
   the mtbdd fixed point must be tuple-identical to the in-core result,
   and the counting projection must equal the recount. *)
let bench_json10 ?(path = "BENCH_pr10.json") () =
  let module W = Jedd_analyses.Weighted in
  let module R = Jedd_relation.Relation in
  let module U = Jedd_relation.Universe in
  let profile =
    match Sys.getenv_opt "JEDD_MTBDD_BENCH" with
    | Some "tiny" -> Workload.tiny
    | Some s -> Workload.profile_named s
    | None -> Workload.profile_named "javac"
  in
  let p = Workload.generate profile in
  (* boolean baseline: in-core suite, then recount its tuples by var *)
  let ri, bool_secs = wall (fun () -> Suite.run_all ~backend:`Incore p) in
  let recount, recount_secs =
    wall (fun () -> W.recount_by_first ri.Suite.pt)
  in
  (* weighted run: same points-to class, terminal-valued universe *)
  let ac, weighted_secs = wall (fun () -> W.run_alloc_counts p) in
  let pt_tuples = R.tuples ac.W.ac_pt in
  let projection_identical = pt_tuples = ri.Suite.pt in
  let counts = W.alloc_counts_list ac in
  let counts_match = counts = recount in
  let max_count = List.fold_left (fun m (_, c) -> max m c) 0 counts in
  let mu = Interp.universe ac.W.ac_inst in
  let mt_hits, mt_misses, mt_terminals, mt_live, mt_peak =
    match Jedd_relation.Backend.mt_store (U.backend mu) with
    | None -> (0, 0, 0, 0, 0)
    | Some st ->
      let module Mt = Jedd_mtbdd.Mtbdd in
      let h, ms, _ = Mt.cache_totals st in
      (h, ms, Mt.distinct_terminals st, Mt.live_nodes st, Mt.peak_nodes st)
  in
  (* call-frequency weighted call graph on the resolved edges *)
  let cf, freq_secs =
    wall (fun () -> W.run_call_freqs p ~call_edges:ri.Suite.call_edges)
  in
  let edges = W.edge_freqs_list cf in
  let hot = W.method_hotness_list cf in
  let max_hot = List.fold_left (fun m (_, h) -> max m h) 0 hot in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"jedd-bench-v10\",\n";
  out "  \"benchmark\": %S,\n" profile.Workload.name;
  out "  \"weighted_pointsto\": {\n";
  (* the boolean baseline runs the full five-analysis suite (the
     frequency half needs its call edges); the mtbdd timing is the
     points-to class alone, so the two are context, not a ratio *)
  out "    \"boolean_suite_seconds\": %.4f,\n" bool_secs;
  out "    \"recount_seconds\": %.4f,\n" recount_secs;
  out "    \"mtbdd_seconds\": %.4f,\n" weighted_secs;
  out "    \"pt_tuples\": %d,\n" (List.length pt_tuples);
  out "    \"vars_counted\": %d,\n" (List.length counts);
  out "    \"max_alloc_count\": %d,\n" max_count;
  out "    \"projection_identical\": %b,\n" projection_identical;
  out "    \"counts_match_recount\": %b\n" counts_match;
  out "  },\n";
  out "  \"call_frequencies\": {\n";
  out "    \"seconds\": %.4f,\n" freq_secs;
  out "    \"reachable_edges\": %d,\n" (List.length edges);
  out "    \"methods_ranked\": %d,\n" (List.length hot);
  out "    \"max_hotness\": %d\n" max_hot;
  out "  },\n";
  out "  \"mtbdd\": {\n";
  out "    \"live_nodes\": %d,\n" mt_live;
  out "    \"peak_nodes\": %d,\n" mt_peak;
  out "    \"distinct_terminals\": %d,\n" mt_terminals;
  out "    \"cache_hits\": %d,\n" mt_hits;
  out "    \"cache_misses\": %d\n" mt_misses;
  out "  }\n";
  out "}\n";
  (* gates *)
  if not projection_identical then begin
    Printf.eprintf
      "json10: mtbdd points-to support differs from the in-core result\n";
    exit 1
  end;
  if not counts_match then begin
    Printf.eprintf
      "json10: counting projection disagrees with the boolean recount\n";
    exit 1
  end;
  if edges = [] || hot = [] then begin
    Printf.eprintf "json10: call-frequency analysis produced no edges\n";
    exit 1
  end;
  U.cleanup mu;
  U.cleanup (Interp.universe cf.W.cf_inst);
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

let smoke () =
  let failures = ref 0 in
  let check name ok =
    if not ok then begin
      Printf.printf "SMOKE FAIL: %s\n" name;
      incr failures
    end
  in
  let m, f, f2, g, g3, by', bz, p_in, p_out, cube_shared, cube_w =
    kernel_fixture ()
  in
  ignore f2;
  let fused0, fb0 = Rep.fused_stats () in
  check "join: fused = band after replace"
    (Rep.relprod_replace m f g p_in M.one
    = Ops.band m f (Rep.replace m g p_in));
  check "compose: fused = relprod after replace"
    (Rep.relprod_replace m f g p_in cube_shared
    = Quant.relprod m f (Rep.replace m g p_in) cube_shared);
  check "replace_exist (project+coerce): fused = replace after exist"
    (Rep.replace_exist m g3 p_in cube_w
    = Rep.replace m (Quant.exist m g3 cube_w) p_in);
  check "replace_exist (up-moving perm): fused = replace after exist"
    (Rep.replace_exist m f p_out cube_shared
    = Rep.replace m (Quant.exist m f cube_shared) p_out);
  let fused1, _ = Rep.fused_stats () in
  check "block moves take the single-recursion path" (fused1 > fused0);
  (* a distant swap is not order-preserving: must fall back, same answer *)
  let l1 = (Fdd.levels m by').(0) and l2 = (Fdd.levels m bz).(0) in
  let p_swap = Rep.make_perm m [ (l1, l2); (l2, l1) ] in
  check "non-monotone perm: fallback agrees with pipeline"
    (Rep.relprod_replace m f g p_swap M.one
    = Ops.band m f (Rep.replace m g p_swap));
  let _, fb1 = Rep.fused_stats () in
  check "non-monotone perm takes the fallback path" (fb1 > fb0);
  (* end-to-end: tiny points-to, hand-coded vs the Jedd runtime (whose
     join/compose now run on the fused kernels) *)
  let p = Workload.generate Workload.tiny in
  let b = Baseline.create p in
  Baseline.solve b;
  let hand_tuples = List.length (Baseline.pt_tuples b) in
  Baseline.destroy b;
  let compiled = Suite.compile_one p "Points-to Analysis" in
  let inst = Driver.instantiate compiled in
  Jedd_analyses.Pointsto.load_facts inst p;
  Jedd_analyses.Pointsto.run inst;
  check "tiny points-to: jedd = hand-coded"
    (List.length (Jedd_analyses.Pointsto.results inst) = hand_tuples);
  (* reorder: same fixed point from a deliberately bad declaration order
     with the optimizer on, and the manager survives a structural audit *)
  let src_bad =
    Jedd_analyses.Common.preamble ~physdom_order:bad_physdom_order p
    ^ Jedd_analyses.Pointsto.source
  in
  let compiled_bad =
    match Driver.compile [ ("PointsTo.jedd", src_bad) ] with
    | Ok c -> c
    | Error e -> failwith (Driver.error_to_string e)
  in
  let inst_off = Driver.instantiate compiled_bad in
  Jedd_analyses.Pointsto.load_facts inst_off p;
  Jedd_analyses.Pointsto.run inst_off;
  let inst_on = Driver.instantiate compiled_bad in
  Jedd_analyses.Pointsto.load_facts inst_on p;
  Jedd_analyses.Pointsto.run ~reorder:true inst_on;
  check "bad order, reorder on: same fixed point"
    (Jedd_analyses.Pointsto.results inst_on
    = Jedd_analyses.Pointsto.results inst_off);
  let m_on = Jedd_relation.Universe.manager (Interp.universe inst_on) in
  check "reorder ran at least one pass" (M.reorder_count m_on > 0);
  (match M.check_invariants m_on with
  | [] -> ()
  | errs ->
    List.iter (fun e -> Printf.printf "SMOKE FAIL: invariant: %s\n" e) errs;
    incr failures);
  if !failures > 0 then exit 1 else print_endline "bench smoke: OK"

(* ----------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --backend=incore|extmem routes every scenario through the chosen
     relation backend (via JEDD_BACKEND, which Universe.create reads
     when no explicit backend is passed). *)
  let cmds =
    List.filter
      (fun a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "--backend" ->
          let v = String.sub a (i + 1) (String.length a - i - 1) in
          (if List.mem v Jedd_relation.Backend.known_backends then
             Unix.putenv "JEDD_BACKEND" v
           else begin
             Printf.eprintf "unknown backend %S (%s)\n" v
               (String.concat "|" Jedd_relation.Backend.known_backends);
             exit 2
           end);
          false
        | _ -> true)
      args
  in
  let run name f = if cmds = [] || List.mem name cmds then f () in
  run "table1" table1;
  run "table2" table2;
  run "fig7" fig7;
  run "compactness" compactness;
  run "ablation-compose" ablation_compose;
  run "ablation-replace" ablation_replace;
  run "ablation-order" ablation_order;
  run "ablation-memory" ablation_memory;
  run "ablation-zdd" ablation_zdd;
  run "reorder" reorder_bench;
  if List.mem "backend" cmds then backend_bench ();
  if List.mem "parallel" cmds then parallel_bench ();
  if List.mem "bechamel" cmds then bechamel ();
  if List.mem "json" cmds then bench_json ();
  if List.mem "json2" cmds then bench_json2 ();
  if List.mem "json3" cmds then bench_json3 ();
  if List.mem "json5" cmds then bench_json5 ();
  if List.mem "json6" cmds then bench_json6 ();
  if List.mem "json7" cmds then bench_json7 ();
  if List.mem "json8" cmds then bench_json8 ();
  (* cost-smoke runs json9 on the tiny profiles; JEDD_BENCH_JSON9_PATH
     keeps those numbers out of the committed default-profile JSON *)
  if List.mem "json9" cmds then
    bench_json9 ?path:(Sys.getenv_opt "JEDD_BENCH_JSON9_PATH") ();
  (* mtbdd-smoke runs json10 on the tiny profile via JEDD_MTBDD_BENCH;
     JEDD_BENCH_JSON10_PATH keeps its numbers out of the committed JSON *)
  if List.mem "json10" cmds then
    bench_json10 ?path:(Sys.getenv_opt "JEDD_BENCH_JSON10_PATH") ();
  if List.mem "load" cmds then bench_load ();
  if List.mem "smoke" cmds then smoke ()
