(* JL007/JL008: the replace-site audit.

   [Lower] records every [IReplace] the assignment stage kept, with the
   source expression it wraps.  For each site we re-solve the §3.3.2 SAT
   instance with that wrapper's assignment edges promoted to hard
   equalities ([Encode.probe_wrap_equal]): if the strengthened instance
   is unsatisfiable, the copy is forced, and the minimized unsat core
   names the conflicting constraints (the §3.3.3 machinery aimed at one
   site); if it is satisfiable, the copy was merely the global solver's
   choice and a different specification could remove it. *)

open Jedd_lang
module JDriver = Jedd_lang.Driver

type verdict =
  | V_forced of string list  (* the minimized core, rendered *)
  | V_chosen

type audit_entry = { site : Lower.replace_site; verdict : verdict }

let layout_to_string (l : Ir.layout) = Format.asprintf "%a" Ir.pp_layout l

let audit ?max_paths_per_class (compiled : JDriver.compiled)
    (prov : Lower.program_provenance) : audit_entry list * Diag.t list =
  let entries =
    List.map
      (fun (site : Lower.replace_site) ->
        let verdict =
          match
            Encode.probe_wrap_equal ?max_paths_per_class
              compiled.JDriver.tprog compiled.JDriver.graph
              ~eid:site.Lower.rs_eid
          with
          | Encode.Forced core -> V_forced core
          | Encode.Avoidable -> V_chosen
        in
        { site; verdict })
      prov.Lower.pp_replaces
  in
  let diags =
    List.map
      (fun { site; verdict } ->
        let coerce =
          Printf.sprintf "%s -> %s (in %s)"
            (layout_to_string site.Lower.rs_from)
            (layout_to_string site.Lower.rs_to)
            site.Lower.rs_method
        in
        match verdict with
        | V_forced core ->
          Diag.make
            ~notes:(List.map (fun c -> "forced because " ^ c) core)
            ~code:"JL007" ~severity:Diag.Info ~pos:site.Lower.rs_pos
            (Printf.sprintf "replace (BDD copy) required here: %s" coerce)
        | V_chosen ->
          Diag.make
            ~notes:
              [
                "no hard constraint forces this copy; adjusting physical \
                 domain specifications could eliminate it";
              ]
            ~code:"JL008" ~severity:Diag.Info ~pos:site.Lower.rs_pos
            (Printf.sprintf "avoidable replace (BDD copy) here: %s" coerce))
      entries
  in
  (entries, diags)
