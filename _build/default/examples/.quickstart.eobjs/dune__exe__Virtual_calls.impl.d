examples/virtual_calls.ml: Common_setup Jedd_lang Jedd_relation Printf
