(* jeddd's concurrent core.

   The BDD manager is single-threaded (shared hash-consing tables, GC
   at safe points), so all relational work funnels through ONE worker
   thread; client connections are handled by a thread each, which parse
   lines, enqueue jobs, and wait on a per-job condition variable with
   the request's deadline.

   A job can be:
     Pending    queued, not yet picked up
     Running    the worker is evaluating it
     Done       response ready
     Abandoned  the waiting client timed out (or hung up)

   On timeout the client thread marks the job Abandoned and answers the
   client itself with a timeout error.  The worker skips Abandoned jobs
   still in the queue, and discards the result of an Abandoned job it
   had already started — BDD evaluation is not interruptible, so a
   timed-out running job still finishes, it just answers nobody.  This
   bounds client-visible latency without corrupting manager state. *)

type job = {
  request : Json.t;
  mutable state : [ `Pending | `Running | `Done | `Abandoned ];
  mutable result : Protocol.outcome option;
  jm : Mutex.t;
  jc : Condition.t;
}

type stats = {
  mutable requests : int;  (** jobs evaluated to completion *)
  mutable errors : int;  (** responses with ok:false *)
  mutable timeouts : int;  (** jobs abandoned on deadline *)
  mutable parse_errors : int;  (** lines that were not valid JSON objects *)
  mutable connections : int;  (** accepted connections, lifetime *)
}

type t = {
  world : Protocol.world;
  mutable qeval : Qeval.t option; (* set right after [create]'s knot-tying *)
  socket_path : string;
  listen_fd : Unix.file_descr;
  queue : job Queue.t;
  qm : Mutex.t;
  qc : Condition.t;  (** signalled when a job is enqueued or on shutdown *)
  mutable stopping : bool;
  stats : stats;
  started : float;
  default_timeout_ms : int;
}

let default_timeout_ms = 30_000

(* -- worker -------------------------------------------------------------- *)

let rec worker_loop t =
  let rec next () =
    Mutex.lock t.qm;
    let rec wait () =
      if t.stopping && Queue.is_empty t.queue then begin
        Mutex.unlock t.qm;
        None
      end
      else if Queue.is_empty t.queue then begin
        Condition.wait t.qc t.qm;
        wait ()
      end
      else Some (Queue.pop t.queue)
    in
    match wait () with
    | None -> ()
    | Some job -> (
      Mutex.unlock t.qm;
      Mutex.lock job.jm;
      let claimed = job.state = `Pending in
      if claimed then job.state <- `Running;
      Mutex.unlock job.jm;
      if not claimed then next () (* abandoned while queued: skip *)
      else begin
        let outcome =
          try
            match t.qeval with
            | Some q -> Qeval.eval q job.request
            | None -> Protocol.eval t.world job.request
          with e ->
            Protocol.Reply
              (Protocol.err
                 (Protocol.request_id job.request)
                 (Printf.sprintf "internal error: %s" (Printexc.to_string e)))
        in
        Mutex.lock job.jm;
        let wanted = job.state = `Running in
        if wanted then begin
          job.result <- Some outcome;
          job.state <- `Done;
          Condition.broadcast job.jc
        end;
        Mutex.unlock job.jm;
        t.stats.requests <- t.stats.requests + 1;
        (match outcome with
        | Protocol.Reply (Json.Obj kvs) | Protocol.Quit (Json.Obj kvs)
          when List.assoc_opt "ok" kvs = Some (Json.Bool false) ->
          t.stats.errors <- t.stats.errors + 1
        | _ -> ());
        (* A delivered Quit is acted on by the client thread AFTER it
           flushes the response (so the goodbye isn't lost in the
           process exit); a shutdown whose requester already abandoned
           it must still stop the server, and nobody else will. *)
        (match outcome with
        | Protocol.Quit _ when not wanted -> request_stop t
        | _ -> ());
        next ()
      end)
  in
  next ()

and request_stop t =
  Mutex.lock t.qm;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.qc;
    (* wake the accept loop; it treats the error as shutdown *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE with _ -> ());
    (try Unix.close t.listen_fd with _ -> ())
  end
  else ();
  Mutex.unlock t.qm

(* -- per-client plumbing -------------------------------------------------- *)

let submit t request =
  let job =
    {
      request;
      state = `Pending;
      result = None;
      jm = Mutex.create ();
      jc = Condition.create ();
    }
  in
  Mutex.lock t.qm;
  if t.stopping then begin
    Mutex.unlock t.qm;
    None
  end
  else begin
    Queue.push job t.queue;
    Condition.signal t.qc;
    Mutex.unlock t.qm;
    Some job
  end

(* Wait until the job is Done or [deadline] (Unix time) passes; on
   timeout mark it Abandoned so the worker drops the eventual result. *)
let await job ~deadline =
  Mutex.lock job.jm;
  let rec loop delay =
    match job.state with
    | `Done ->
      let r = job.result in
      Mutex.unlock job.jm;
      r
    | `Abandoned ->
      Mutex.unlock job.jm;
      None
    | `Pending | `Running ->
      if Unix.gettimeofday () >= deadline then begin
        job.state <- `Abandoned;
        Mutex.unlock job.jm;
        None
      end
      else begin
        (* Condition.wait has no timeout in the stdlib; poll the state
           with exponential backoff so the fast path (a lookup query
           finishing in microseconds) answers in well under a
           millisecond while long waits cost ~200 wakeups/s at most. *)
        Mutex.unlock job.jm;
        Thread.delay delay;
        Mutex.lock job.jm;
        loop (Float.min (delay *. 2.) 0.005)
      end
  in
  loop 0.0001

let timeout_of t request =
  match Json.member "timeout_ms" request with
  | Some (Json.Int ms) when ms > 0 -> float_of_int ms /. 1000.
  | _ -> float_of_int t.default_timeout_ms /. 1000.

let handle_line t line =
  match Json.of_string line with
  | exception Json.Parse_error msg ->
    t.stats.parse_errors <- t.stats.parse_errors + 1;
    `Reply (Protocol.err Json.Null (Printf.sprintf "parse error: %s" msg))
  | (Json.Obj _) as request -> (
    match submit t request with
    | None -> `Reply (Protocol.err (Protocol.request_id request) "server is shutting down")
    | Some job -> (
      let deadline = Unix.gettimeofday () +. timeout_of t request in
      match await job ~deadline with
      | Some (Protocol.Reply r) -> `Reply r
      | Some (Protocol.Quit r) -> `Quit r
      | None ->
        t.stats.timeouts <- t.stats.timeouts + 1;
        `Reply (Protocol.err (Protocol.request_id request) "timeout")))
  | _ ->
    t.stats.parse_errors <- t.stats.parse_errors + 1;
    `Reply (Protocol.err Json.Null "request must be a JSON object")

let client_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send v =
    output_string oc (Json.to_string v);
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | "" -> loop ()
    | line -> (
      match handle_line t line with
      | `Reply r ->
        send r;
        loop ()
      | `Quit r ->
        send r;
        request_stop t (* after the flush: the goodbye must get out *))
  in
  (try loop () with _ -> ());
  try Unix.close fd with _ -> ()

(* -- lifecycle ------------------------------------------------------------ *)

let server_stats t () =
  [
    ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
    ("requests", Json.Int t.stats.requests);
    ("errors", Json.Int t.stats.errors);
    ("timeouts", Json.Int t.stats.timeouts);
    ("parse_errors", Json.Int t.stats.parse_errors);
    ("connections", Json.Int t.stats.connections);
    ("queue_depth", Json.Int (Queue.length t.queue));
  ]

let create ?(default_timeout_ms = default_timeout_ms) ?(cache_capacity = 4096)
    ?(universe_hash = "") ~socket_path snap =
  (if Sys.file_exists socket_path then
     try Unix.unlink socket_path with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 64;
  let rec t =
    {
      world =
        {
          Protocol.snap;
          extra_stats =
            (fun () ->
              server_stats t ()
              @
              match t.qeval with
              | Some q -> Qeval.stats_fields q
              | None -> []);
        };
      qeval = None;
      socket_path;
      listen_fd;
      queue = Queue.create ();
      qm = Mutex.create ();
      qc = Condition.create ();
      stopping = false;
      stats =
        {
          requests = 0;
          errors = 0;
          timeouts = 0;
          parse_errors = 0;
          connections = 0;
        };
      started = Unix.gettimeofday ();
      default_timeout_ms;
    }
  in
  t.qeval <- Some (Qeval.create ~cache_capacity ~universe_hash t.world);
  t

let stop = request_stop

(* Accept connections until shutdown; blocks the calling thread.  The
   worker thread is started here so [create] stays side-effect-light. *)
let serve t =
  let worker = Thread.create worker_loop t in
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      when t.stopping -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | exception _ when t.stopping -> ()
    | fd, _ ->
      t.stats.connections <- t.stats.connections + 1;
      ignore (Thread.create (client_loop t) fd);
      accept_loop ()
  in
  accept_loop ();
  (* drain: let in-flight jobs finish, then join the worker.  Client
     threads answering those jobs exit on their own once their peer
     reads the response or hangs up; they are deliberately not joined
     — an idle client holding its connection open must not block
     shutdown. *)
  Mutex.lock t.qm;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm;
  Thread.join worker;
  (try Unix.unlink t.socket_path with _ -> ())
