(** A content-addressed store for snapshot blobs: [objects/<md5>.snap]
    keyed by content digest, plus a [refs/<name>] namespace of mutable
    pointers — a deliberately git-shaped layout.  All writes are
    temp-file + rename, so readers never observe partial objects. *)

type t

exception Corrupt_object of string
(** Raised by [get] when an object's contents no longer hash to the
    digest in its filename (on-disk damage).  The message carries the
    offending path and the expected vs. found digests. *)

val open_ : string -> t
(** Open (creating directories as needed) a store rooted at a path. *)

val put : t -> string -> string
(** Store a blob, returning its hex digest.  Idempotent: an existing
    object with the same content is left untouched. *)

val tag : t -> string -> string -> unit
(** [tag t name hex] points ref [name] at an object digest.  Names are
    restricted to [[A-Za-z0-9._-]]. *)

val read_ref : t -> string -> string option

val resolve : t -> string -> string option
(** Object path for a ref name, full digest, or unambiguous digest
    prefix (at least 4 characters). *)

val get : t -> string -> string option
(** Blob contents for a ref name or digest (prefix).  Re-hashes the
    blob against its filename digest and raises {!Corrupt_object} on a
    mismatch. *)

val objects : t -> string list
(** All object digests, sorted. *)

val refs : t -> (string * string) list
(** All [(name, digest)] refs, sorted by name. *)
