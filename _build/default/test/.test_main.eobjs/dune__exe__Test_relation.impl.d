test/test_relation.ml: Alcotest Jedd_relation List QCheck QCheck_alcotest Random Set String
