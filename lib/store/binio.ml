(* Bounds-checked little-endian binary readers and writers for the
   snapshot format.  Readers never trust the input: every length is
   checked against the remaining bytes and every overrun raises
   [Truncated], which the snapshot layer converts into its [Corrupt]
   error.  Integers are 64-bit two's complement, little endian. *)

exception Truncated

(* -- writing ------------------------------------------------------------ *)

type writer = Buffer.t

let writer () = Buffer.create 4096
let contents (w : writer) = Buffer.contents w

let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

let i64 w v =
  for k = 0 to 7 do
    u8 w ((v asr (8 * k)) land 0xff)
  done

let int_ w v = i64 w v

let string_ w s =
  i64 w (String.length s);
  Buffer.add_string w s

let int_array w a =
  i64 w (Array.length a);
  Array.iter (fun v -> i64 w v) a

let list_ w f l =
  i64 w (List.length l);
  List.iter (f w) l

(* -- reading ------------------------------------------------------------ *)

type reader = { buf : string; mutable pos : int; stop : int }

let reader ?(pos = 0) ?len buf =
  let stop = match len with Some n -> pos + n | None -> String.length buf in
  if pos < 0 || stop > String.length buf then raise Truncated;
  { buf; pos; stop }

let remaining r = r.stop - r.pos
let at_end r = r.pos >= r.stop

let need r n = if n < 0 || remaining r < n then raise Truncated

let read_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_i64 r =
  need r 8;
  let v = ref 0 in
  for k = 7 downto 0 do
    v := (!v lsl 8) lor Char.code r.buf.[r.pos + k]
  done;
  r.pos <- r.pos + 8;
  (* sign-extend from bit 62: OCaml ints are 63-bit, so byte 7's high
     bit folds into the sign on the shift below *)
  !v

let read_int r = read_i64 r

let read_string r =
  let n = read_i64 r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let read_int_array r =
  let n = read_i64 r in
  (* each element takes 8 bytes; checking first prevents huge
     allocations driven by a corrupt length *)
  need r (n * 8);
  Array.init n (fun _ -> read_i64 r)

let read_list r f =
  let n = read_i64 r in
  if n < 0 then raise Truncated;
  List.init n (fun _ -> f r)
