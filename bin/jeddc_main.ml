(* jeddc: the Jedd-to-Java translator CLI (Figure 1).

   Usage:
     jeddc FILE.jedd...                 check + assign physical domains
     jeddc -o OUT.java FILE.jedd...    also write the generated Java
     jeddc --stats FILE.jedd...        print Table 1-style statistics
     jeddc --dimacs OUT.cnf FILE...    dump the SAT instance *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --jobs N, then JEDD_JOBS, then the recommended domain count.  The
   translator pipeline itself is single-domain — the flag is validated
   here so the three CLIs agree on the interface, and generated-code
   consumers can rely on jeddc rejecting the same values jedd-analyze
   would. *)
let resolve_jobs jobs =
  let parse s =
    try Jedd_bdd.Par.jobs_of_string s
    with Invalid_argument msg ->
      Printf.eprintf "jeddc: %s\n" msg;
      exit 2
  in
  match (jobs, Sys.getenv_opt "JEDD_JOBS") with
  | Some s, _ -> parse s
  | None, Some s -> parse s
  | None, None -> Jedd_bdd.Par.default_jobs ()

let run files output stats dimacs dump_ir lint jobs =
  ignore (resolve_jobs jobs : int);
  if files = [] then begin
    prerr_endline "jeddc: no input files";
    exit 2
  end;
  let sources = List.map (fun f -> (f, read_file f)) files in
  (* optionally dump the raw CNF before solving *)
  (if dimacs <> "" then
     try
       let decls =
         List.concat_map
           (fun (file, src) -> Jedd_lang.Parser.parse_program ~file src)
           sources
       in
       let tprog = Jedd_lang.Typecheck.check decls in
       let graph = Jedd_lang.Constraints.build tprog in
       let solver, st = Jedd_lang.Encode.build_cnf tprog graph in
       ignore solver;
       let oc = open_out dimacs in
       Printf.fprintf oc "c jeddc physical-domain assignment instance\n";
       Printf.fprintf oc "c vars=%d clauses=%d literals=%d\n"
         st.Jedd_lang.Encode.sat_vars st.Jedd_lang.Encode.sat_clauses
         st.Jedd_lang.Encode.sat_literals;
       Printf.fprintf oc "p cnf %d %d\n" st.Jedd_lang.Encode.sat_vars
         st.Jedd_lang.Encode.sat_clauses;
       close_out oc;
       Printf.printf "jeddc: SAT instance summary written to %s\n" dimacs
     with _ -> ());
  match Jedd_lang.Driver.compile sources with
  | Error e ->
    prerr_endline (Jedd_lang.Driver.error_to_string e);
    exit 1
  | Ok compiled ->
    (match lint with
    | Some format ->
      (* lint mode: diagnostics only, CI-friendly exit code *)
      let report = Jedd_lint.Driver.lint compiled in
      (match format with
      | "json" -> print_endline (Jedd_lint.Driver.to_json report)
      | "text" -> print_endline (Jedd_lint.Driver.to_text report)
      | other ->
        Printf.eprintf "jeddc: unknown lint format %s (text|json)\n" other;
        exit 2);
      exit (Jedd_lint.Driver.exit_code report)
    | None -> ());
    let st = compiled.Jedd_lang.Driver.constraint_stats in
    let sat = compiled.Jedd_lang.Driver.assignment.Jedd_lang.Encode.stats in
    Printf.printf "jeddc: physical domain assignment complete (%.4f s)\n"
      sat.Jedd_lang.Encode.solve_seconds;
    if stats then begin
      Printf.printf "  relational expressions : %d\n"
        st.Jedd_lang.Constraints.n_rel_exprs;
      Printf.printf "  attributes             : %d\n"
        st.Jedd_lang.Constraints.n_attrs;
      Printf.printf "  physical domains       : %d\n"
        st.Jedd_lang.Constraints.n_physdoms;
      Printf.printf "  conflict constraints   : %d\n"
        st.Jedd_lang.Constraints.n_conflict;
      Printf.printf "  equality constraints   : %d\n"
        st.Jedd_lang.Constraints.n_equality;
      Printf.printf "  assignment constraints : %d\n"
        st.Jedd_lang.Constraints.n_assignment;
      Printf.printf "  SAT variables          : %d\n" sat.Jedd_lang.Encode.sat_vars;
      Printf.printf "  SAT clauses            : %d\n"
        sat.Jedd_lang.Encode.sat_clauses;
      Printf.printf "  SAT literals           : %d\n"
        sat.Jedd_lang.Encode.sat_literals
    end;
    if output <> "" then begin
      let oc = open_out output in
      output_string oc (Jedd_lang.Emit_java.emit_program compiled);
      close_out oc;
      Printf.printf "jeddc: generated Java written to %s\n" output
    end;
    if dump_ir then begin
      let methods = Jedd_lang.Lower.lower_program compiled in
      List.iter
        (fun q ->
          let m = Hashtbl.find methods q in
          Format.printf "%a@." Jedd_lang.Ir.pp_method m)
        compiled.Jedd_lang.Driver.tprog.Jedd_lang.Tast.method_order
    end

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Jedd source files")

let output_arg =
  Arg.(
    value & opt string ""
    & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Write generated Java to $(docv)")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print Table 1-style statistics")

let dimacs_arg =
  Arg.(
    value & opt string ""
    & info [ "dimacs" ] ~docv:"OUT"
        ~doc:"Dump the physical-domain-assignment SAT instance summary")

let dump_ir_arg =
  Arg.(
    value & flag
    & info [ "dump-ir" ] ~doc:"Print the lowered relational IR (§3.2)")

let lint_arg =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "lint" ] ~docv:"FORMAT"
        ~doc:
          "Run the jeddlint checkers instead of generating code and print \
           diagnostics as $(docv) (text or json).  Exits 2 on errors, 1 on \
           warnings, 0 otherwise.")

let jobs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Parallel width for the generated runtime (1..64); validated here, \
           falls back to JEDD_JOBS then the recommended domain count.  The \
           translator itself runs on one domain.")

let cmd =
  Cmd.v
    (Cmd.info "jeddc" ~version:Jedd_relation.Version.banner
       ~doc:"Jedd to Java translator (PLDI 2004 reproduction)")
    Term.(
      const run $ files_arg $ output_arg $ stats_arg $ dimacs_arg $ dump_ir_arg
      $ lint_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
