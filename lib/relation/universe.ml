type tag_delta = { tag : string; hits : int; misses : int }

type bdd_delta = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  per_tag : tag_delta list;
  gcs : int;
  gc_millis : float;
  grows : int;
  grow_millis : float;
  reorders : int;
  reorder_swaps : int;
  reorder_millis : float;
  spill_runs : int;
  spilled_bytes : int;
  pq_peak_bytes : int;
  io_millis : float;
  mt_cache_hits : int;
  mt_cache_misses : int;
  mt_per_tag : tag_delta list;
  mt_terminals : int;
}

type op_event = {
  op : string;
  label : string;
  millis : float;
  operand_nodes : int list;
  result_nodes : int;
  result_tuples : int;
  shapes : (int array * int array list) option;
  bdd : bdd_delta option;
}

type profile_level = Off | Counts | Shapes

type t = {
  manager : Jedd_bdd.Manager.t;
  backend : Backend.t;
  engine : Jedd_reorder.Reorder.t;
  uid : int;
  mutable level : profile_level;
  mutable on_op : (op_event -> unit) option;
  mutable scratch_counter : int;
}

let counter = ref 0

let backend_of_env () =
  match Sys.getenv_opt "JEDD_BACKEND" with
  | None | Some "" -> `Incore
  | Some s -> (
    try Backend.kind_of_string s
    with Invalid_argument msg ->
      invalid_arg (Printf.sprintf "JEDD_BACKEND=%s: %s" s msg))

let create ?(node_capacity = 1 lsl 16) ?node_limit ?backend () =
  incr counter;
  let kind = match backend with Some k -> k | None -> backend_of_env () in
  let manager = Jedd_bdd.Manager.create ~node_capacity ?node_limit () in
  {
    manager;
    backend = Backend.make kind manager;
    engine = Jedd_reorder.Reorder.create manager;
    uid = !counter;
    level = Off;
    on_op = None;
    scratch_counter = 0;
  }

let uid u = u.uid

let manager u = u.manager
let backend u = u.backend
let backend_kind u = Backend.kind u.backend
let reorder_engine u = u.engine

let set_node_limit u limit = Jedd_bdd.Manager.set_node_limit u.manager limit

let register_block u ~name ~vars =
  Jedd_reorder.Reorder.register_block u.engine ~name ~vars

(* Dynamic reordering rewires the in-core node store in place; an
   external-memory universe bakes levels into its node files, so
   reordering is disabled there and both entry points degrade to
   no-ops. *)
let reorder ?(trigger = "explicit") u =
  if Backend.frozen u.backend then
    raise
      (Jedd_bdd.Manager.Frozen
         "Universe.reorder: the universe is frozen (read-only serving mode)");
  if Backend.supports_reorder u.backend then
    Jedd_reorder.Reorder.sift ~trigger u.engine

let set_auto_reorder u threshold =
  if Backend.supports_reorder u.backend then
    match threshold with
    | Some n -> Jedd_reorder.Reorder.install_auto u.engine ~threshold:n
    | None -> Jedd_reorder.Reorder.disable_auto u.engine

(* Snapshot the monotone counters of the manager and (when present) the
   spill store; [bdd_delta_since] turns two snapshots into the
   per-operation delta the profiler records. *)
type bdd_snapshot = {
  snap_stats : Jedd_bdd.Manager.cache_stat list;
  snap_gcs : int;
  snap_gc_millis : float;
  snap_grows : int;
  snap_grow_millis : float;
  snap_reorders : int;
  snap_swaps : int;
  snap_reorder_millis : float;
  snap_spill_runs : int;
  snap_spilled_bytes : int;
  snap_pq_peak_bytes : int;
  snap_io_millis : float;
  snap_mt_stats : Jedd_mtbdd.Mtbdd.cache_stat list;
  snap_mt_terminals : int;
}

let bdd_snapshot u =
  let m = u.manager in
  let spill_runs, spilled_bytes, pq_peak, io_millis =
    match Backend.store u.backend with
    | None -> (0, 0, 0, 0.0)
    | Some st ->
      ( Jedd_extmem.Store.spill_runs st,
        Jedd_extmem.Store.spilled_bytes st,
        Jedd_extmem.Store.pq_peak_bytes st,
        Jedd_extmem.Store.io_millis st )
  in
  let mt_stats, mt_terminals =
    match Backend.mt_store u.backend with
    | None -> ([], 0)
    | Some st ->
      (Jedd_mtbdd.Mtbdd.cache_stats st, Jedd_mtbdd.Mtbdd.distinct_terminals st)
  in
  {
    snap_stats = Jedd_bdd.Manager.cache_stats m;
    snap_gcs = Jedd_bdd.Manager.gc_count m;
    snap_gc_millis = Jedd_bdd.Manager.gc_millis m;
    snap_grows = Jedd_bdd.Manager.grow_count m;
    snap_grow_millis = Jedd_bdd.Manager.grow_millis m;
    snap_reorders = Jedd_bdd.Manager.reorder_count m;
    snap_swaps = Jedd_bdd.Manager.swap_count m;
    snap_reorder_millis = Jedd_bdd.Manager.reorder_millis m;
    snap_spill_runs = spill_runs;
    snap_spilled_bytes = spilled_bytes;
    snap_pq_peak_bytes = pq_peak;
    snap_io_millis = io_millis;
    snap_mt_stats = mt_stats;
    snap_mt_terminals = mt_terminals;
  }

let bdd_delta_since u before =
  let after = bdd_snapshot u in
  let per_tag =
    List.map2
      (fun (b : Jedd_bdd.Manager.cache_stat)
           (a : Jedd_bdd.Manager.cache_stat) ->
        { tag = a.name; hits = a.hits - b.hits; misses = a.misses - b.misses })
      before.snap_stats after.snap_stats
    |> List.filter (fun d -> d.hits <> 0 || d.misses <> 0)
  in
  let sum f =
    List.fold_left2
      (fun acc (b : Jedd_bdd.Manager.cache_stat)
           (a : Jedd_bdd.Manager.cache_stat) -> acc + f a - f b)
      0 before.snap_stats after.snap_stats
  in
  let mt_per_tag =
    List.map2
      (fun (b : Jedd_mtbdd.Mtbdd.cache_stat)
           (a : Jedd_mtbdd.Mtbdd.cache_stat) ->
        { tag = a.name; hits = a.hits - b.hits; misses = a.misses - b.misses })
      before.snap_mt_stats after.snap_mt_stats
    |> List.filter (fun d -> d.hits <> 0 || d.misses <> 0)
  in
  let mt_sum f =
    List.fold_left2
      (fun acc (b : Jedd_mtbdd.Mtbdd.cache_stat)
           (a : Jedd_mtbdd.Mtbdd.cache_stat) -> acc + f a - f b)
      0 before.snap_mt_stats after.snap_mt_stats
  in
  {
    cache_hits = sum (fun (s : Jedd_bdd.Manager.cache_stat) -> s.hits);
    cache_misses = sum (fun (s : Jedd_bdd.Manager.cache_stat) -> s.misses);
    cache_evictions =
      sum (fun (s : Jedd_bdd.Manager.cache_stat) -> s.evictions);
    per_tag;
    gcs = after.snap_gcs - before.snap_gcs;
    gc_millis = after.snap_gc_millis -. before.snap_gc_millis;
    grows = after.snap_grows - before.snap_grows;
    grow_millis = after.snap_grow_millis -. before.snap_grow_millis;
    reorders = after.snap_reorders - before.snap_reorders;
    reorder_swaps = after.snap_swaps - before.snap_swaps;
    reorder_millis =
      after.snap_reorder_millis -. before.snap_reorder_millis;
    spill_runs = after.snap_spill_runs - before.snap_spill_runs;
    spilled_bytes = after.snap_spilled_bytes - before.snap_spilled_bytes;
    pq_peak_bytes = after.snap_pq_peak_bytes;
    io_millis = after.snap_io_millis -. before.snap_io_millis;
    mt_cache_hits = mt_sum (fun (s : Jedd_mtbdd.Mtbdd.cache_stat) -> s.hits);
    mt_cache_misses =
      mt_sum (fun (s : Jedd_mtbdd.Mtbdd.cache_stat) -> s.misses);
    mt_per_tag;
    (* a gauge, not a counter: the current number of distinct weights *)
    mt_terminals = after.snap_mt_terminals;
  }

let set_profile_level u level = u.level <- level
let profile_level u = u.level
let set_on_op u hook = u.on_op <- hook

let emit_op u event =
  match u.on_op with
  | Some hook when u.level <> Off -> hook event
  | _ -> ()

let next_scratch_name u =
  u.scratch_counter <- u.scratch_counter + 1;
  Printf.sprintf "__scratch%d" u.scratch_counter

let checkpoint u = Backend.checkpoint u.backend

(* -- frozen (read-only serving) mode ------------------------------------ *)

let freeze u =
  if Backend.pool u.backend <> None then
    invalid_arg "Universe.freeze: disable parallelism first";
  Jedd_reorder.Reorder.disable_auto u.engine;
  Backend.freeze u.backend

let frozen u = Backend.frozen u.backend

(* -- parallel execution ------------------------------------------------- *)

let enable_parallel ?(jobs = Jedd_bdd.Par.default_jobs ()) u =
  (match Backend.kind u.backend with
  | `Extmem ->
    invalid_arg "Universe.enable_parallel: extmem backend is single-domain"
  | `Hybrid ->
    invalid_arg "Universe.enable_parallel: hybrid backend is single-domain"
  | `Mtbdd ->
    invalid_arg "Universe.enable_parallel: mtbdd backend is single-domain"
  | `Incore -> ());
  if Backend.pool u.backend <> None then
    invalid_arg "Universe.enable_parallel: already enabled";
  Jedd_bdd.Manager.enter_parallel u.manager;
  let pool =
    try Jedd_bdd.Par.create ~jobs ()
    with e ->
      Jedd_bdd.Manager.exit_parallel u.manager;
      raise e
  in
  Backend.set_pool u.backend (Some pool)

let disable_parallel u =
  match Backend.pool u.backend with
  | None -> ()
  | Some pool ->
    Backend.set_pool u.backend None;
    Jedd_bdd.Par.shutdown pool;
    Jedd_bdd.Manager.exit_parallel u.manager

let jobs u =
  match Backend.pool u.backend with
  | None -> 1
  | Some pool -> Jedd_bdd.Par.jobs pool

let with_parallel ?jobs u f =
  enable_parallel ?jobs u;
  Fun.protect ~finally:(fun () -> disable_parallel u) f

let cleanup u =
  disable_parallel u;
  Backend.cleanup u.backend
