module Solver = Jedd_sat.Solver

exception Unreachable_attribute of string list
exception Assignment_conflict of string

type sat_stats = {
  sat_vars : int;
  sat_clauses : int;
  sat_literals : int;
  solve_seconds : float;
  paths_truncated : bool;
}

type assignment = {
  phys_of : Constraints.site -> string -> Tast.phys_info;
  widths : (string * int) list;
  stats : sat_stats;
}

(* What each original clause meant, for core-based diagnosis. *)
type clause_kind =
  | K_some of int  (* node *)
  | K_unique of int * int * int  (* node, p, p' *)
  | K_spec of int * int  (* node, p *)
  | K_conflict of int * int * int  (* node, node', p *)
  | K_equal of int * int * int  (* node, node', p *)
  | K_flow of int  (* node *)
  | K_path of int * int  (* class, p0 *)

type instance = {
  solver : Solver.t;
  physdoms : Tast.phys_info array;
  g : Constraints.t;
  fp : Flowpath.t;
  clause_kinds : clause_kind array;
  clause_lits : int list array;  (* for rebuilds during core minimisation *)
  truncated : bool;
}

let build ?(max_paths_per_class = 8) (prog : Tast.tprogram) (g : Constraints.t)
    : instance =
  let physdoms =
    Array.of_list
      (List.sort
         (fun (a : Tast.phys_info) b -> compare a.p_name b.p_name)
         prog.physdoms)
  in
  let np = Array.length physdoms in
  let n = Constraints.node_count g in
  if np = 0 && n > 0 then
    raise
      (Unreachable_attribute
         [ "the program declares no physical domains at all" ]);
  let phys_index = Hashtbl.create 16 in
  Array.iteri
    (fun i (p : Tast.phys_info) -> Hashtbl.add phys_index p.p_name i)
    physdoms;
  let var node p = (node * np) + p + 1 in
  let fp = Flowpath.analyze g in
  let paths, truncated = Flowpath.enumerate fp ~max_per_class:max_paths_per_class in
  (* unreachable attributes: the first §3.3.3 failure mode *)
  let missing = Flowpath.unreachable fp paths in
  if missing <> [] then begin
    let msgs =
      List.concat_map
        (fun c ->
          List.map
            (fun i ->
              Printf.sprintf
                "no specified physical domain reaches %s; assign one explicitly"
                (Constraints.describe_node g i))
            fp.Flowpath.members.(c))
        missing
    in
    raise (Unreachable_attribute msgs)
  end;
  let solver = Solver.create () in
  for _ = 1 to n * np do
    ignore (Solver.new_var solver)
  done;
  (* path variables, numbered per class in enumeration order *)
  let path_vars =
    Array.map (List.map (fun (p : Flowpath.path) -> (Solver.new_var solver, p))) paths
  in
  let kinds = ref [] in
  let lits_acc = ref [] in
  let add_clause kind lits =
    let id = Solver.add_clause solver lits in
    ignore id;
    kinds := kind :: !kinds;
    lits_acc := lits :: !lits_acc
  in
  (* 1: each attribute gets some physical domain *)
  for i = 0 to n - 1 do
    add_clause (K_some i) (List.init np (fun p -> var i p))
  done;
  (* 2: ... and not two *)
  for i = 0 to n - 1 do
    for p = 0 to np - 1 do
      for p' = p + 1 to np - 1 do
        add_clause (K_unique (i, p, p')) [ -var i p; -var i p' ]
      done
    done
  done;
  (* 3: specified attributes *)
  List.iter
    (fun (i, (phys : Tast.phys_info)) ->
      let p = Hashtbl.find phys_index phys.p_name in
      add_clause (K_spec (i, p)) [ var i p ])
    g.Constraints.specified;
  (* 4: conflict edges *)
  List.iter
    (fun (i, j) ->
      for p = 0 to np - 1 do
        add_clause (K_conflict (i, j, p)) [ -var i p; -var j p ]
      done)
    g.Constraints.conflict;
  (* 5: equality edges *)
  List.iter
    (fun (i, j) ->
      for p = 0 to np - 1 do
        add_clause (K_equal (i, j, p)) [ -var i p; var j p ];
        add_clause (K_equal (j, i, p)) [ -var j p; var i p ]
      done)
    g.Constraints.equality;
  (* 6: at least one flow path per attribute instance *)
  for i = 0 to n - 1 do
    let c = fp.Flowpath.class_of.(i) in
    add_clause (K_flow i)
      (List.map (fun (pv, _) -> pv) path_vars.(c))
  done;
  (* 7: an active path assigns its domain along its length *)
  Array.iteri
    (fun _c pvs ->
      List.iter
        (fun (pv, (path : Flowpath.path)) ->
          let p0 = Hashtbl.find phys_index path.start_phys.p_name in
          List.iter
            (fun cls ->
              List.iter
                (fun node ->
                  add_clause (K_path (cls, p0)) [ -pv; var node p0 ])
                fp.Flowpath.members.(cls))
            path.through)
        pvs)
    path_vars;
  {
    solver;
    physdoms;
    g;
    fp;
    clause_kinds = Array.of_list (List.rev !kinds);
    clause_lits = Array.of_list (List.rev !lits_acc);
    truncated;
  }

let build_cnf ?max_paths_per_class prog g =
  let inst = build ?max_paths_per_class prog g in
  ( inst.solver,
    {
      sat_vars = Solver.num_vars inst.solver;
      sat_clauses = Solver.num_clauses inst.solver;
      sat_literals = Solver.num_literals inst.solver;
      solve_seconds = 0.0;
      paths_truncated = inst.truncated;
    } )

(* -- diagnosis (§3.3.3) ---------------------------------------------------- *)

let diagnose inst core =
  (* Shrink the core so the reported conflict is crisp, exactly as
     unsat-core extraction + manual inspection would give the paper's
     users.  Rebuilding is cheap: instances are a few hundred thousand
     binary clauses at worst and cores are small. *)
  let rebuild ids =
    let s = Solver.create () in
    for _ = 1 to Solver.num_vars inst.solver do
      ignore (Solver.new_var s)
    done;
    let arr = Array.of_list ids in
    List.iter (fun id -> ignore (Solver.add_clause s inst.clause_lits.(id))) ids;
    (s, fun local -> arr.(local))
  in
  let original_core = core in
  let core =
    if List.length core <= 60 then Solver.minimize_core ~rebuild core else core
  in
  let conflicts_in c =
    List.filter
      (fun id ->
        match inst.clause_kinds.(id) with K_conflict _ -> true | _ -> false)
      c
  in
  let conflict_clauses = conflicts_in core @ conflicts_in original_core in
  (* Prefer reporting the conflict on an expression (the paper's
     messages name e.g. the Compose_expression) over its variable or
     wrapper echoes. *)
  let on_expr id =
    match inst.clause_kinds.(id) with
    | K_conflict (i, j, _) ->
      let is_expr n =
        match inst.g.Constraints.nodes.(n).Constraints.site with
        | Constraints.S_expr _ -> true
        | _ -> false
      in
      is_expr i && is_expr j
    | _ -> false
  in
  let conflict_clause =
    match List.find_opt on_expr conflict_clauses with
    | Some id -> Some id
    | None -> (
      match conflict_clauses with id :: _ -> Some id | [] -> None)
  in
  match conflict_clause with
  | Some id -> (
    match inst.clause_kinds.(id) with
    | K_conflict (i, j, p) ->
      Printf.sprintf "Conflict between %s and %s over physical domain %s"
        (Constraints.describe_node inst.g i)
        (Constraints.describe_node inst.g j)
        inst.physdoms.(p).p_name
    | _ -> assert false)
  | None ->
    (* The §3.3.2 proposition says every core contains a conflict clause
       when the instance came from a well-formed graph; the remaining
       possibility is contradictory explicit specifications. *)
    let specs =
      List.filter_map
        (fun id ->
          match inst.clause_kinds.(id) with
          | K_spec (i, p) ->
            Some
              (Printf.sprintf "%s is pinned to %s"
                 (Constraints.describe_node inst.g i)
                 inst.physdoms.(p).p_name)
          | _ -> None)
        core
    in
    "Contradictory physical domain specifications: "
    ^ String.concat "; " specs

(* -- replace-site audit probe (jeddlint JL007/JL008) ----------------------- *)

type replace_probe =
  | Forced of string list
      (* the copy is unavoidable; the strings name the minimal set of
         conflicting constraints (a minimized unsat core) that forces it *)
  | Avoidable
      (* some satisfying assignment keeps this wrapper's domains equal:
         only the solver's global optimisation chose to break it *)

let probe_wrap_equal ?max_paths_per_class (prog : Tast.tprogram)
    (g : Constraints.t) ~eid : replace_probe =
  let inst = build ?max_paths_per_class prog g in
  let np = Array.length inst.physdoms in
  let var node p = (node * np) + p + 1 in
  let n_original = Array.length inst.clause_lits in
  (* the assignment edges the partitioning was allowed to break: the
     (expression, wrapper) node pair of every attribute of [eid] *)
  let pairs =
    let out = ref [] in
    Array.iteri
      (fun j (node : Constraints.node) ->
        match node.Constraints.site with
        | Constraints.S_wrap e when e = eid -> (
          match
            Hashtbl.find_opt inst.g.Constraints.node_index
              (Constraints.S_expr eid, node.Constraints.attr.Tast.a_name)
          with
          | Some i -> out := (i, j) :: !out
          | None -> ())
        | _ -> ())
      inst.g.Constraints.nodes;
    !out
  in
  (* probe clauses asserting the wrapper keeps its input's domains *)
  let probe_lits =
    List.concat_map
      (fun (i, j) ->
        List.concat
          (List.init np (fun p ->
               [ [ -var i p; var j p ]; [ -var j p; var i p ] ])))
      pairs
  in
  List.iter (fun lits -> ignore (Solver.add_clause inst.solver lits)) probe_lits;
  match Solver.solve inst.solver with
  | Solver.Sat -> Avoidable
  | Solver.Unsat ->
    let core =
      List.filter
        (fun id -> id < n_original)
        (Solver.unsat_core inst.solver)
    in
    (* deletion-minimize the original-clause part of the core, keeping
       the probe clauses as fixed background on every candidate check *)
    let num_vars = Solver.num_vars inst.solver in
    let unsat_without ids =
      let s = Solver.create () in
      for _ = 1 to num_vars do
        ignore (Solver.new_var s)
      done;
      List.iter (fun id -> ignore (Solver.add_clause s inst.clause_lits.(id))) ids;
      List.iter (fun lits -> ignore (Solver.add_clause s lits)) probe_lits;
      Solver.solve s = Solver.Unsat
    in
    let core =
      if List.length core > 60 then core
      else
        List.fold_left
          (fun kept id ->
            let rest = List.filter (fun x -> x <> id) kept in
            if unsat_without rest then rest else kept)
          core core
    in
    let describe id =
      match inst.clause_kinds.(id) with
      | K_spec (i, p) ->
        Some
          (Printf.sprintf "%s is pinned to %s"
             (Constraints.describe_node inst.g i)
             inst.physdoms.(p).p_name)
      | K_equal (i, j, _) ->
        let i, j = if i <= j then (i, j) else (j, i) in
        Some
          (Printf.sprintf "%s must share a physical domain with %s"
             (Constraints.describe_node inst.g i)
             (Constraints.describe_node inst.g j))
      | K_conflict (i, j, _) ->
        let i, j = if i <= j then (i, j) else (j, i) in
        Some
          (Printf.sprintf "%s and %s must use distinct physical domains"
             (Constraints.describe_node inst.g i)
             (Constraints.describe_node inst.g j))
      | K_flow i ->
        Some
          (Printf.sprintf "%s must be reached by some specified domain"
             (Constraints.describe_node inst.g i))
      | K_path (cls, p0) ->
        let who =
          match inst.fp.Flowpath.members.(cls) with
          | i :: _ -> Constraints.describe_node inst.g i
          | [] -> "an attribute class"
        in
        Some
          (Printf.sprintf "the flow of %s constrains %s"
             inst.physdoms.(p0).p_name who)
      | K_some _ | K_unique _ -> None
    in
    let msgs = List.sort_uniq compare (List.filter_map describe core) in
    let msgs =
      if msgs = [] then
        [ "the surrounding constraints force distinct physical domains here" ]
      else msgs
    in
    Forced msgs

(* Decode a satisfied instance's model into an [assignment]. *)
let decode inst ~solve_seconds : assignment =
  let np = Array.length inst.physdoms in
  let n = Constraints.node_count inst.g in
  let node_phys = Array.make n inst.physdoms.(0) in
  for i = 0 to n - 1 do
    let rec pick p =
      if p >= np then
        invalid_arg "Encode.solve: model assigns no physical domain"
      else if Solver.value inst.solver ((i * np) + p + 1) then
        inst.physdoms.(p)
      else pick (p + 1)
    in
    node_phys.(i) <- pick 0
  done;
  let phys_of site attr_name =
    match Hashtbl.find_opt inst.g.Constraints.node_index (site, attr_name) with
    | Some i -> node_phys.(i)
    | None ->
      invalid_arg
        (Printf.sprintf "Encode.phys_of: unknown attribute %s" attr_name)
  in
  (* computed widths: every physical domain must hold the widest
     domain of any attribute assigned to it (§3.2.1) *)
  let widths = Hashtbl.create 16 in
  Array.iter
    (fun (p : Tast.phys_info) ->
      Hashtbl.replace widths p.p_name
        (max 1 (Option.value p.p_min_bits ~default:1)))
    inst.physdoms;
  let domain_bits (d : Tast.domain_info) =
    let rec go n acc = if n >= d.d_size then acc else go (n * 2) (acc + 1) in
    max 1 (go 1 0)
  in
  Array.iteri
    (fun i (node : Constraints.node) ->
      let p = node_phys.(i) in
      let need = domain_bits node.attr.a_domain in
      if need > Hashtbl.find widths p.p_name then
        Hashtbl.replace widths p.p_name need)
    inst.g.Constraints.nodes;
  {
    phys_of;
    widths = Hashtbl.fold (fun name w acc -> (name, w) :: acc) widths [];
    stats =
      {
        sat_vars = Solver.num_vars inst.solver;
        sat_clauses = Solver.num_clauses inst.solver;
        sat_literals = Solver.num_literals inst.solver;
        solve_seconds;
        paths_truncated = inst.truncated;
      };
  }

let solve ?max_paths_per_class (prog : Tast.tprogram) (g : Constraints.t) :
    assignment =
  let inst = build ?max_paths_per_class prog g in
  let t0 = Sys.time () in
  let result = Solver.solve inst.solver in
  let solve_seconds = Sys.time () -. t0 in
  match result with
  | Solver.Unsat ->
    raise (Assignment_conflict (diagnose inst (Solver.unsat_core inst.solver)))
  | Solver.Sat -> decode inst ~solve_seconds

(* -- weighted assignment (minimise the cost of broken edges) --------------- *)

type weighted_stats = {
  w_sites : int;
  w_kept : int;
  w_broken : int;
  w_cost : int;
  w_solves : int;
}

let solve_weighted ?max_paths_per_class ?(budget = 64) ~weight
    (prog : Tast.tprogram) (g : Constraints.t) : assignment * weighted_stats
    =
  let t0 = Sys.time () in
  (* candidate groups: the assignment edges of one dummy replace
     wrapper stand or fall together (a single IReplace covers all of a
     wrap site's attributes), so they are kept or broken as a unit *)
  let by_eid = Hashtbl.create 32 in
  List.iter
    (fun (i, j) ->
      let eid_of k =
        match g.Constraints.nodes.(k).Constraints.site with
        | Constraints.S_wrap e -> Some e
        | _ -> None
      in
      match (eid_of j, eid_of i) with
      | Some e, _ | None, Some e ->
        Hashtbl.replace by_eid e
          ((i, j) :: Option.value (Hashtbl.find_opt by_eid e) ~default:[])
      | None, None -> ())
    g.Constraints.assignment;
  let groups =
    Hashtbl.fold (fun e pairs acc -> (e, weight e, pairs) :: acc) by_eid []
    |> List.sort (fun (e1, w1, _) (e2, w2, _) ->
           if w1 <> w2 then compare w2 w1 else compare e1 e2)
    |> Array.of_list
  in
  let ng = Array.length groups in
  let solves = ref 0 in
  (* one probe = a fresh clause-1-7 instance plus hard equalities over
     every kept group's edges, exactly the [probe_wrap_equal] shape but
     for a set of wrappers at once *)
  let probe kept_mask =
    incr solves;
    let inst = build ?max_paths_per_class prog g in
    let np = Array.length inst.physdoms in
    let var node p = (node * np) + p + 1 in
    Array.iteri
      (fun gi (_, _, pairs) ->
        if kept_mask.(gi) then
          List.iter
            (fun (i, j) ->
              for p = 0 to np - 1 do
                ignore (Solver.add_clause inst.solver [ -var i p; var j p ]);
                ignore (Solver.add_clause inst.solver [ -var j p; var i p ])
              done)
            pairs)
      groups;
    if Solver.solve inst.solver = Solver.Sat then Some inst else None
  in
  (* greedy: walk the groups by descending weight, keeping each one
     whose equalities remain satisfiable on top of what is already
     kept — heavy sites get first claim on the solver's freedom *)
  let kept = Array.make ng false in
  for gi = 0 to ng - 1 do
    kept.(gi) <- true;
    match probe kept with
    | Some _ -> ()
    | None -> kept.(gi) <- false
  done;
  let cost_of mask =
    let c = ref 0 in
    Array.iteri
      (fun gi (_, w, _) -> if not mask.(gi) then c := !c + w)
      groups;
    !c
  in
  let best_mask = ref (Array.copy kept) in
  let best_cost = ref (cost_of kept) in
  (* bounded branch-and-bound refinement: revisit the decision order,
     branching keep/break with the incumbent cost as the bound and a
     budget on extra solver calls.  The greedy order can be beaten when
     keeping one heavy site blocked two lighter ones it outweighs
     individually but not together. *)
  if !best_cost > 0 then begin
    let base_solves = !solves in
    let budget_left () = !solves - base_solves < budget in
    let rec bb gi mask cost =
      if cost < !best_cost && budget_left () then
        if gi >= ng then begin
          (* mask was verified satisfiable when its last kept group was
             added, so it is a genuine incumbent *)
          best_cost := cost;
          best_mask := Array.copy mask
        end
        else begin
          let _, w, _ = groups.(gi) in
          mask.(gi) <- true;
          (match probe mask with
          | Some _ -> bb (gi + 1) mask cost
          | None -> ());
          mask.(gi) <- false;
          bb (gi + 1) mask (cost + w)
        end
    in
    bb 0 (Array.make ng false) 0
  end;
  (* final decode from the winning kept set *)
  match probe !best_mask with
  | None ->
    (* every incumbent with kept groups was produced by a satisfiable
       probe and rebuilds are deterministic, so this is only reachable
       when the base instance itself is unsatisfiable (the greedy pass
       rejected everything); report it exactly as [solve] would *)
    let inst = build ?max_paths_per_class prog g in
    (match Solver.solve inst.solver with
    | Solver.Unsat ->
      raise
        (Assignment_conflict (diagnose inst (Solver.unsat_core inst.solver)))
    | Solver.Sat ->
      raise
        (Assignment_conflict
           "Encode.solve_weighted: winning kept set became unsatisfiable"))
  | Some inst ->
    let asg = decode inst ~solve_seconds:(Sys.time () -. t0) in
    let n_kept =
      Array.fold_left (fun a k -> if k then a + 1 else a) 0 !best_mask
    in
    ( asg,
      {
        w_sites = ng;
        w_kept = n_kept;
        w_broken = ng - n_kept;
        w_cost = !best_cost;
        w_solves = !solves;
      } )
