lib/jedd/lower.ml: Ast Constraints Driver Encode Hashtbl Ir Lazy List Liveness Tast
