(* Call-graph construction: reachable methods from the entry points over
   the resolved call edges (the Call Graph module of Figure 2). *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp

let source =
  "class CallGraph {\n\
  \  <callsite:C1, method:M1> callEdge;\n\
  \  <callsite:C1, srcmethod:M2> siteIn;\n\
  \  <method:M1> entry;\n\
  \  <method:M1> reachable = 0B;\n\
  \  <callsite:C1> reachableSites = 0B;\n\
  \  public void run() {\n\
  \    reachable = entry;\n\
  \    <method:M1> delta = entry;\n\
  \    do {\n\
  \      <callsite:C1> sites = siteIn{srcmethod} <> ((method=>srcmethod) delta){srcmethod};\n\
  \      reachableSites |= sites;\n\
  \      <method:M1> tgts = callEdge{callsite} <> reachableSites{callsite};\n\
  \      delta = tgts - reachable;\n\
  \      reachable |= delta;\n\
  \    } while (delta != 0B);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) ~call_edges =
  Common.set_fact inst "CallGraph.callEdge" call_edges;
  Common.set_fact inst "CallGraph.siteIn"
    (List.map
       (fun (cs : P.call_site) -> [ cs.P.cs_id; cs.P.cs_in_method ])
       p.P.calls);
  Common.set_fact inst "CallGraph.entry"
    (List.map (fun m -> [ m ]) p.P.entry_methods)

let run ?(reorder = false) inst =
  let u = Interp.universe inst in
  if reorder then begin
    Jedd_relation.Universe.reorder ~trigger:"pre-run" u;
    Jedd_relation.Universe.set_auto_reorder u (Some (1 lsl 16))
  end;
  ignore (Interp.call inst "CallGraph.run" []);
  if reorder then Jedd_relation.Universe.set_auto_reorder u None
let results inst = Common.get_tuples inst "CallGraph.reachable"
