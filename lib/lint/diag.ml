type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  pos : Jedd_lang.Ast.pos;
  message : string;
  notes : string list;
}

let make ?(notes = []) ~code ~severity ~pos message =
  { code; severity; pos; message; notes }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let compare_diag a b =
  let key (d : t) =
    let p : Jedd_lang.Ast.pos = d.pos in
    (p.file, p.line, p.col, d.code, d.message)
  in
  compare (key a) (key b)

let to_text d =
  let head =
    Format.asprintf "%a: %s: %s [%s]" Jedd_lang.Ast.pp_pos d.pos
      (severity_name d.severity) d.message d.code
  in
  String.concat "\n" (head :: List.map (fun n -> "  note: " ^ n) d.notes)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json ~indent d =
  let p = d.pos in
  let field k v = Printf.sprintf "%s  %s: %s" indent (json_string k) v in
  let fields =
    [
      field "code" (json_string d.code);
      field "severity" (json_string (severity_name d.severity));
      field "file" (json_string p.Jedd_lang.Ast.file);
      field "line" (string_of_int p.Jedd_lang.Ast.line);
      field "col" (string_of_int p.Jedd_lang.Ast.col);
      field "message" (json_string d.message);
      field "notes"
        ("[" ^ String.concat ", " (List.map json_string d.notes) ^ "]");
    ]
  in
  Printf.sprintf "%s{\n%s\n%s}" indent (String.concat ",\n" fields) indent
