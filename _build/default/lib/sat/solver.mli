(** A CDCL SAT solver with unsatisfiable-core extraction.

    This plays the role zChaff plays in the paper: the back end of the
    physical-domain-assignment algorithm (§3.3.2) and the provider of the
    unsatisfiable cores that power Jedd's error messages (§3.3.3).

    The implementation is a classic conflict-driven solver: two-watched
    literals, first-UIP clause learning, VSIDS variable activities with a
    binary heap, phase saving, and Luby restarts.  Every learned clause
    records the clauses resolved in its derivation, so when the instance
    is unsatisfiable the solver can walk the resolution graph backwards
    and report a subset of the *original* clauses that is itself
    unsatisfiable. *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate a variable and return its index, starting from 1 (literals
    are DIMACS-style: [v] positive, [-v] negative). *)

val num_vars : t -> int
val num_clauses : t -> int
(** Number of original (problem) clauses added so far, counting
    tautologies that were skipped. *)

val add_clause : t -> int list -> int
(** [add_clause s lits] adds a clause and returns its id (a dense index
    also counting skipped tautologies, so callers can keep side tables
    indexed by id).  Duplicated literals are removed; a tautological
    clause is accepted but ignored by the search. *)

val solve : t -> result
(** Run the search.  May be called only once per solver instance
    (subsequent calls return the cached result). *)

val value : t -> int -> bool
(** After [solve] returned [Sat]: the value of a variable in the model. *)

val unsat_core : t -> int list
(** After [solve] returned [Unsat]: ids of original clauses whose
    conjunction is unsatisfiable.  Sorted ascending.  Not guaranteed
    minimal (neither was zChaff's); see {!minimize_core}. *)

val proof : t -> int list list
(** After [solve] returned [Unsat]: the learned clauses in derivation
    order (DIMACS literals), ending with the empty clause — a clausal
    proof validatable by {!Checker.check_rup}, in the spirit of the
    independent resolution-based checking of the paper's reference
    [30]. *)

val minimize_core :
  rebuild:(int list -> t * (int -> int)) -> int list -> int list
(** Deletion-based core minimisation.  [rebuild ids] must construct a
    fresh solver containing only the original clauses [ids] and return it
    together with a map from the new solver's clause ids back to the
    original ids.  Each clause is tentatively dropped; if the rest is
    still unsatisfiable the drop is kept.  The result is a minimal
    unsatisfiable subset (with respect to single deletions). *)

(** {2 Statistics} *)

val conflicts : t -> int
val decisions : t -> int
val propagations : t -> int
val num_literals : t -> int
(** Total number of literal occurrences over all original clauses —
    the "Literals" column of the paper's Table 1. *)
