lib/relation/schema.mli: Attribute Format Physdom
