type man = Manager.t
type node = Manager.node

let support_levels m f =
  let seen = Hashtbl.create 256 in
  let levels = Hashtbl.create 64 in
  let rec go f =
    if (not (Manager.is_terminal f)) && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Hashtbl.replace levels (Manager.level m f) ();
      go (Manager.low m f);
      go (Manager.high m f)
    end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) levels [])

let satcount m f ~over =
  let over = List.sort_uniq compare over in
  let support = support_levels m f in
  let in_over = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace in_over l ()) over;
  List.iter
    (fun l ->
      if not (Hashtbl.mem in_over l) then
        invalid_arg "Count.satcount: BDD depends on a variable outside ~over")
    support;
  (* rank.(i) = position of a level within [over]; count below a node is
     relative to its rank so that skipped variables double the count. *)
  let n = List.length over in
  let rank = Hashtbl.create 64 in
  List.iteri (fun i l -> Hashtbl.add rank l i) over;
  let rank_of f =
    if Manager.is_terminal f then n else Hashtbl.find rank (Manager.level m f)
  in
  let memo = Hashtbl.create 1024 in
  (* c f = number of assignments of the variables of [over] with rank >=
     rank_of f that satisfy f. *)
  let rec c f =
    if f = Manager.zero then 0
    else if f = Manager.one then 1
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let rf = rank_of f in
        let lo = Manager.low m f and hi = Manager.high m f in
        let part g = c g lsl (rank_of g - rf - 1) in
        let r = part lo + part hi in
        Hashtbl.add memo f r;
        r
  in
  c f lsl rank_of f

let satcount_all m f =
  let all = List.init (Manager.num_vars m) (fun i -> i) in
  satcount m f ~over:all

let nodecount_many m roots =
  let seen = Hashtbl.create 1024 in
  let rec go f =
    if (not (Manager.is_terminal f)) && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      go (Manager.low m f);
      go (Manager.high m f)
    end
  in
  List.iter go roots;
  Hashtbl.length seen

let nodecount m f = nodecount_many m [ f ]

let shape m f =
  let counts = Array.make (Manager.num_vars m) 0 in
  let seen = Hashtbl.create 1024 in
  let rec go f =
    if (not (Manager.is_terminal f)) && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      counts.(Manager.level m f) <- counts.(Manager.level m f) + 1;
      go (Manager.low m f);
      go (Manager.high m f)
    end
  in
  go f;
  counts
