(** Counting and measurement: satisfying-assignment counts, node counts,
    and per-level shapes (the quantity Jedd's profiler charts, §4.3). *)

type man = Manager.t
type node = Manager.node

val satcount : man -> node -> over:int list -> int
(** [satcount m f ~over] is the number of satisfying assignments of [f]
    over exactly the variables in [over].  [f] must not depend on any
    variable outside [over] ([Invalid_argument] otherwise).  Counts are
    exact native integers; they overflow above 2{^62} assignments, far
    beyond any relation this system builds. *)

val satcount_all : man -> node -> int
(** Count over all variables currently allocated in the manager. *)

val nodecount : man -> node -> int
(** Number of distinct internal nodes reachable from [f] (terminals
    excluded), i.e. the "size" the paper's profiler reports. *)

val nodecount_many : man -> node list -> int
(** Size of the shared graph of several roots. *)

val shape : man -> node -> int array
(** [shape m f] is the number of reachable nodes at each level — the
    profile the paper's browsable profiler draws. Length {!Manager.num_vars}. *)

val support_levels : man -> node -> int list
(** Sorted levels of the variables [f] depends on. *)
