type t = {
  class_of : int array;
  members : int list array;
  n_classes : int;
  class_edges : (int * int) list;
  sources : (int * Tast.phys_info) list;
}

type path = { start_phys : Tast.phys_info; through : int list }

(* union-find *)
let rec find parent i =
  if parent.(i) = i then i
  else begin
    parent.(i) <- find parent parent.(i);
    parent.(i)
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let analyze (g : Constraints.t) : t =
  let n = Constraints.node_count g in
  let parent = Array.init n (fun i -> i) in
  List.iter (fun (a, b) -> union parent a b) g.Constraints.equality;
  (* dense class ids *)
  let class_ids = Hashtbl.create 64 in
  let n_classes = ref 0 in
  let class_of =
    Array.init n (fun i ->
        let r = find parent i in
        match Hashtbl.find_opt class_ids r with
        | Some c -> c
        | None ->
          let c = !n_classes in
          incr n_classes;
          Hashtbl.add class_ids r c;
          c)
  in
  let members = Array.make !n_classes [] in
  Array.iteri (fun i c -> members.(c) <- i :: members.(c)) class_of;
  let edge_set = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      let ca = class_of.(a) and cb = class_of.(b) in
      if ca <> cb then begin
        Hashtbl.replace edge_set (ca, cb) ();
        Hashtbl.replace edge_set (cb, ca) ()
      end)
    g.Constraints.assignment;
  let class_edges = Hashtbl.fold (fun e () acc -> e :: acc) edge_set [] in
  let sources =
    List.map (fun (i, p) -> (class_of.(i), p)) g.Constraints.specified
  in
  { class_of; members; n_classes = !n_classes; class_edges; sources }

let enumerate t ~max_per_class =
  let neighbours = Array.make t.n_classes [] in
  List.iter (fun (a, b) -> neighbours.(a) <- b :: neighbours.(a)) t.class_edges;
  let found = Array.make t.n_classes [] in
  let counts = Array.make t.n_classes 0 in
  let truncated = ref false in
  let q = Queue.create () in
  (* A source class gets the trivial one-class path; if a class has two
     different specs, both become path starts (the SAT clauses will sort
     out consistency, or prove it impossible). *)
  List.iter
    (fun (c, phys) ->
      Queue.add { start_phys = phys; through = [ c ] } q)
    t.sources;
  while not (Queue.is_empty q) do
    let p = Queue.pop q in
    let last = List.hd (List.rev p.through) in
    if counts.(last) < max_per_class then begin
      found.(last) <- p :: found.(last);
      counts.(last) <- counts.(last) + 1;
      List.iter
        (fun next ->
          if not (List.mem next p.through) then
            Queue.add { p with through = p.through @ [ next ] } q)
        neighbours.(last)
    end
    else truncated := true
  done;
  (Array.map List.rev found, !truncated)

let unreachable t found =
  let missing = ref [] in
  Array.iteri
    (fun c paths ->
      if paths = [] && t.members.(c) <> [] then missing := c :: !missing)
    found;
  List.rev !missing
