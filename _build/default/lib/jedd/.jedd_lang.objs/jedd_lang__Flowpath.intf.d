lib/jedd/flowpath.mli: Constraints Tast
