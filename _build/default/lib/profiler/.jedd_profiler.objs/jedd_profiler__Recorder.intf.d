lib/profiler/recorder.mli: Jedd_relation
