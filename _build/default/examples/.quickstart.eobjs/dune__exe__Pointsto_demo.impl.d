examples/pointsto_demo.ml: Array Format Jedd_analyses Jedd_minijava List Printf Sys
