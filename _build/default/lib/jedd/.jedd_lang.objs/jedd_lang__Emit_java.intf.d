lib/jedd/emit_java.mli: Driver
