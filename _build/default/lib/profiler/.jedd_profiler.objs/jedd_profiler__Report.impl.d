lib/profiler/report.ml: Array Buffer Filename Jedd_relation List Printf Recorder String
