(** Hash-consed multi-terminal BDD (MTBDD) store with integer terminals.

    The quantitative twin of [Jedd_bdd.Manager]: nodes are dense integer
    handles into flat arrays, interned through a unique table so equal
    functions share one handle, reclaimed by refcount-rooted mark/sweep
    at safe points.  Where a BDD ends in the two terminals 0/1, an MTBDD
    ends in an arbitrary non-negative integer terminal — so one diagram
    represents a map from assignments to counts or weights, and the
    boolean engine's connectives generalise to pointwise terminal
    arithmetic ({!apply}) and quantification to terminal aggregation
    ({!exist}: sum for counting, max for boolean-style projection).

    The store is sequential-only and keeps a fixed variable order: node
    levels are the current levels of the owning universe's in-core
    manager at construction time, baked in exactly like the extmem
    backend's node files (so an [`Mtbdd] universe disables dynamic
    reordering).  Terminal values must be non-negative; arithmetic
    saturates at {!value_cap} instead of overflowing. *)

type t
(** An MTBDD store.  Handles from different stores must not be mixed. *)

type node = int
(** A node handle.  Terminals carry an integer value; {!zero} (the
    terminal 0) is the additive and multiplicative absorbing element and
    plays the role of the empty relation. *)

exception Out_of_nodes
(** Raised by allocation when the node table is full and the configured
    node budget forbids growing.  The store remains consistent; the
    operation in flight is abandoned. *)

val value_cap : int
(** Saturation bound for all terminal arithmetic. *)

val create :
  ?node_capacity:int ->
  ?cache_bits:int ->
  ?cache_ways:int ->
  ?node_limit:int ->
  unit ->
  t
(** [create ()] makes a store holding only the terminal 0.
    [node_capacity] is the initial node-array capacity (default
    [1 lsl 14]), [cache_bits] the log2 of the operation-cache entry
    count (default 12), [cache_ways] its set associativity (default 4),
    [node_limit] an optional capacity cap ({!Out_of_nodes} beyond it). *)

val terminal : t -> int -> node
(** Intern the terminal with the given value ([Invalid_argument] on
    negative values; values above {!value_cap} are clamped to it). *)

val zero : t -> node
(** The terminal 0 (permanently pinned). *)

val one : t -> node
(** The terminal 1 — boolean [true] under the 0/1 embedding. *)

val is_terminal : t -> node -> bool
val terminal_value : t -> node -> int
(** Value of a terminal ([Invalid_argument] on internal nodes). *)

val level : t -> node -> int
(** Level of a node ([Jedd_bdd.Manager.terminal_level] for terminals). *)

val low : t -> node -> node
val high : t -> node -> node

val mk : t -> int -> node -> node -> node
(** [mk s lvl lo hi]: the unique node [(lvl, lo, hi)] with the [lo == hi]
    redundancy rule.  [lvl] must be strictly above both children. *)

val addref : t -> node -> unit
val delref : t -> node -> unit
val checkpoint : t -> unit
(** Safe point: collect when the table is nearly full.  Never call from
    inside a recursive operation. *)

val gc : t -> unit
(** Force a mark/sweep collection from referenced roots. *)

val live_nodes : t -> int
val peak_nodes : t -> int
val gc_count : t -> int

val distinct_terminals : t -> int
(** Number of distinct terminal values currently allocated (including
    the pinned 0) — the "how quantitative is this universe" gauge the
    profiler reports. *)

(** {2 Terminal-valued operations} *)

(** Pointwise binary terminal operation for {!apply}: saturating [Add] /
    [Mul], [Min] / [Max], and [Diff] — [Diff a b] is [a] where [b = 0]
    and [0] elsewhere, the terminal form of set difference. *)
type binop = Add | Min | Max | Mul | Diff

val apply : t -> binop -> node -> node -> node
(** Memoized generic apply: combine two MTBDDs pointwise with the given
    terminal operation.  Under the 0/1 embedding, [Mul] is conjunction,
    [Max] disjunction and [Diff] difference. *)

(** Aggregation rule for {!exist}: [Sum] adds the two cofactors of each
    quantified level (and doubles across quantified levels absent from a
    sub-diagram — counting semantics, cf. satcount), [Max] keeps the
    larger (boolean-projection semantics; absent levels are no-ops). *)
type agg = Sum | Max_agg

val exist : t -> agg -> node -> int list -> node
(** Quantify the given levels out by terminal aggregation. *)

val restrict : t -> node -> (int * bool) list -> node
(** Cofactor by a partial assignment of levels. *)

val replace : t -> node -> (int * int) list -> node
(** Rebuild with levels permuted by the (source, target) pairs.  When
    the permutation preserves the diagram's level order the rebuild is a
    single relabeling pass; otherwise it falls back to multiplying with
    the bi-implication diagram of the moved levels and projecting the
    sources out ([Max_agg] — exact because exactly one source assignment
    matches each target). *)

val relprod_replace :
  t ->
  ?combine:binop ->
  ?agg:agg ->
  node ->
  node ->
  (int * int) list ->
  int list ->
  node
(** [relprod_replace s f g pairs qlevels] is
    [exist agg (apply combine f (replace g pairs)) qlevels] — the
    join/compose kernel, fused into one recursion (mirroring
    [Jedd_bdd.Replace.relprod_replace]) when the permutation is
    order-preserving on [g].  [combine] defaults to [Mul] and [agg] to
    [Max_agg]: boolean semantics under the 0/1 embedding. *)

val fused_stats : unit -> int * int
(** [(fused, fallback)] counts of the {!relprod_replace} kernel, over
    all stores (cf. [Jedd_bdd.Replace.fused_stats]). *)

(** {2 Boolean abstraction and lifting} *)

val of_bool :
  t -> Jedd_bdd.Manager.t -> ?weight:int -> Jedd_bdd.Manager.node -> node
(** Lift a boolean BDD: [zero] maps to terminal 0, [one] to terminal
    [weight] (default 1), structure preserved.  Levels are the
    manager's current levels. *)

val to_bool : t -> Jedd_bdd.Manager.t -> node -> Jedd_bdd.Manager.node
(** Abstract down to an ordinary BDD: nonzero terminals become [one].
    The returned root is unreferenced; the caller addrefs. *)

val threshold_bool :
  t -> Jedd_bdd.Manager.t -> node -> int -> Jedd_bdd.Manager.node
(** Like {!to_bool} but keeping terminals [>= k] only.
    [threshold_bool s m n 1 = to_bool s m n]. *)

val threshold : t -> node -> int -> node
(** Clamp within the store: terminals [>= k] become 1, others 0 —
    [of_bool] of [threshold_bool], without leaving the store. *)

(** {2 Counting, enumeration, diagnostics} *)

val nodecount : t -> node -> int
val satcount : t -> node -> over:int list -> int
(** Number of assignments of the [over] levels reaching a nonzero
    terminal (the tuple count of the relation's support). *)

val shape : t -> node -> num_vars:int -> int array

val iter_assignments :
  t -> node -> levels:int array -> (bool array -> unit) -> unit
(** Enumerate assignments reaching nonzero terminals; [levels] sorted
    ascending, the value array is reused between calls. *)

val iter_weighted :
  t -> node -> levels:int array -> (bool array -> int -> unit) -> unit
(** Like {!iter_assignments} but also passing each assignment's terminal
    value. *)

(** {2 Cache statistics} *)

type cache_stat = {
  name : string;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
}

val cache_stats : t -> cache_stat list
(** One entry per operation tag (apply per-op, exist per-aggregation,
    the fused kernel, ...), monotone over the store's lifetime. *)

val cache_totals : t -> int * int * int
(** [(hits, misses, evictions)] summed over all tags. *)
