lib/sat/dimacs.mli: Solver
