(** Hand-written lexer for Jedd source.

    The grammar of Figure 5 adds only a handful of symbols to Java; the
    interesting multi-character tokens are [><] (join), [<>] (compose),
    [=>] (replacement arrow), and the [0B]/[1B] constants. *)

type token =
  | IDENT of string
  | INT of int
  | ZERO_B
  | ONE_B
  | KW of string  (** reserved word *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LANGLE
  | RANGLE
  | COMMA
  | SEMI
  | COLON
  | ARROW  (** => *)
  | JOIN_SYM  (** >< *)
  | COMPOSE_SYM  (** <> *)
  | PIPE
  | AMP
  | MINUS
  | BANG
  | EQ  (** = *)
  | EQEQ
  | NEQ
  | PIPE_EQ
  | AMP_EQ
  | MINUS_EQ
  | AND_AND
  | OR_OR
  | EOF

exception Lex_error of string * Ast.pos

val keywords : string list

val tokenize : file:string -> string -> (token * Ast.pos) list
(** Whole-input tokenisation.  Comments are Java's [//] and [/* */]. *)

val describe : token -> string
(** For parse-error messages. *)
