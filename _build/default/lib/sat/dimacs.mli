(** DIMACS CNF reading and writing — the interchange format the paper's
    jeddc used to talk to zChaff.  Kept for interoperability and for
    dumping the domain-assignment instances the benchmark harness
    measures (Table 1). *)

type problem = { nvars : int; clauses : int list list }

val to_string : problem -> string
(** Serialise in [p cnf] format. *)

val of_string : string -> problem
(** Parse a DIMACS file body.  Raises [Failure] on malformed input. *)

val load_into : Solver.t -> problem -> int list
(** Add every clause to a solver; returns the clause ids in order. *)
