type node = int

let zero = 0
let one = 1
let terminal_level = max_int lsr 1

(* A free node has [lvl] = -1 and its [hnext] field threads the free
   list.  Allocated nodes thread [hnext] through their unique-table
   bucket. *)
type t = {
  mutable nvars : int;
  mutable capacity : int;
  mutable lvl : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable refc : int array;
  mutable hnext : int array;
  mutable buckets : int array;
  mutable bucket_mask : int;
  mutable free_head : int;
  mutable free_count : int;
  mutable allocated : int; (* nodes ever handed out and not swept *)
  mutable peak : int;
  mutable gcs : int;
  cache : int array; (* direct-mapped: 5 ints per entry *)
  cache_mask : int;
  mutable marked : Bytes.t;
  mutable visited : Bytes.t;
}

let free_mark = -1

let hash3 a b c mask =
  let h = (a * 12582917) lxor (b * 4256249) lxor (c * 0x9e3779b9) in
  (h lxor (h lsr 16)) land mask

let create ?(node_capacity = 1 lsl 15) ?(cache_bits = 14) () =
  let capacity = max 1024 node_capacity in
  let m =
    {
      nvars = 0;
      capacity;
      lvl = Array.make capacity free_mark;
      lo = Array.make capacity 0;
      hi = Array.make capacity 0;
      refc = Array.make capacity 0;
      hnext = Array.make capacity (-1);
      buckets = Array.make capacity (-1);
      bucket_mask = capacity - 1;
      free_head = -1;
      free_count = 0;
      allocated = 2;
      peak = 2;
      gcs = 0;
      cache = Array.make ((1 lsl cache_bits) * 5) (-1);
      cache_mask = (1 lsl cache_bits) - 1;
      marked = Bytes.make capacity '\000';
      visited = Bytes.make capacity '\000';
    }
  in
  (* Terminals: permanently allocated, never hashed, never swept. *)
  m.lvl.(0) <- terminal_level;
  m.lvl.(1) <- terminal_level;
  m.refc.(0) <- 1;
  m.refc.(1) <- 1;
  (* Thread the rest into the free list. *)
  for i = capacity - 1 downto 2 do
    m.hnext.(i) <- m.free_head;
    m.lvl.(i) <- free_mark;
    m.free_head <- i;
    m.free_count <- m.free_count + 1
  done;
  m

let new_var m =
  let v = m.nvars in
  m.nvars <- v + 1;
  v

let num_vars m = m.nvars
let level m n = m.lvl.(n)
let low m n = m.lo.(n)
let high m n = m.hi.(n)
let is_terminal n = n < 2
let live_nodes m = m.allocated
let peak_nodes m = m.peak
let gc_count m = m.gcs
let refcount m n = m.refc.(n)

let clear_caches m = Array.fill m.cache 0 (Array.length m.cache) (-1)

let cache_lookup m tag a b c =
  let idx = hash3 (a lxor (tag * 0x85ebca6b)) b c m.cache_mask * 5 in
  let t = m.cache in
  if t.(idx) = tag && t.(idx + 1) = a && t.(idx + 2) = b && t.(idx + 3) = c
  then t.(idx + 4)
  else -1

let cache_store m tag a b c result =
  let idx = hash3 (a lxor (tag * 0x85ebca6b)) b c m.cache_mask * 5 in
  let t = m.cache in
  t.(idx) <- tag;
  t.(idx + 1) <- a;
  t.(idx + 2) <- b;
  t.(idx + 3) <- c;
  t.(idx + 4) <- result

(* -- Growth ------------------------------------------------------------ *)

let grow_array a capacity fill =
  let a' = Array.make capacity fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let rebuild_buckets m =
  Array.fill m.buckets 0 (Array.length m.buckets) (-1);
  (* Free-list entries are re-threaded too, so rebuild it as we go. *)
  m.free_head <- -1;
  m.free_count <- 0;
  for n = m.capacity - 1 downto 2 do
    if m.lvl.(n) = free_mark then begin
      m.hnext.(n) <- m.free_head;
      m.free_head <- n;
      m.free_count <- m.free_count + 1
    end
    else begin
      let b = hash3 m.lvl.(n) m.lo.(n) m.hi.(n) m.bucket_mask in
      m.hnext.(n) <- m.buckets.(b);
      m.buckets.(b) <- n
    end
  done

let grow m =
  let capacity = m.capacity * 2 in
  m.lvl <- grow_array m.lvl capacity free_mark;
  m.lo <- grow_array m.lo capacity 0;
  m.hi <- grow_array m.hi capacity 0;
  m.refc <- grow_array m.refc capacity 0;
  m.hnext <- grow_array m.hnext capacity (-1);
  m.buckets <- Array.make capacity (-1);
  m.bucket_mask <- capacity - 1;
  let marked = Bytes.make capacity '\000' in
  Bytes.blit m.marked 0 marked 0 (Bytes.length m.marked);
  m.marked <- marked;
  let visited = Bytes.make capacity '\000' in
  Bytes.blit m.visited 0 visited 0 (Bytes.length m.visited);
  m.visited <- visited;
  m.capacity <- capacity;
  rebuild_buckets m

(* -- Garbage collection ------------------------------------------------ *)

let mark_from m root =
  if root >= 2 && Bytes.get m.marked root = '\000' then begin
    let stack = ref [ root ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
        stack := rest;
        if n >= 2 && Bytes.get m.marked n = '\000' then begin
          Bytes.set m.marked n '\001';
          stack := m.lo.(n) :: m.hi.(n) :: !stack
        end
    done
  end

let gc m =
  m.gcs <- m.gcs + 1;
  clear_caches m;
  Bytes.fill m.marked 0 (Bytes.length m.marked) '\000';
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark && m.refc.(n) > 0 then mark_from m n
  done;
  (* Sweep: unmarked allocated nodes become free. *)
  m.allocated <- 2;
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark then
      if Bytes.get m.marked n = '\000' then m.lvl.(n) <- free_mark
      else m.allocated <- m.allocated + 1
  done;
  rebuild_buckets m

let checkpoint m =
  if m.free_count * 4 < m.capacity then begin
    gc m;
    (* If collection freed too little, enlarge so the mutator does not
       immediately bump into the wall again. *)
    if m.free_count * 4 < m.capacity then grow m
  end

(* -- Node creation ------------------------------------------------------ *)

let alloc m =
  if m.free_head < 0 then grow m;
  let n = m.free_head in
  m.free_head <- m.hnext.(n);
  m.free_count <- m.free_count - 1;
  m.allocated <- m.allocated + 1;
  if m.allocated > m.peak then m.peak <- m.allocated;
  n

let mk m lvl lo hi =
  if lo = hi then lo
  else begin
    assert (lvl >= 0 && lvl < m.lvl.(lo) && lvl < m.lvl.(hi));
    let b = hash3 lvl lo hi m.bucket_mask in
    let rec find n =
      if n < 0 then begin
        let n = alloc m in
        m.lvl.(n) <- lvl;
        m.lo.(n) <- lo;
        m.hi.(n) <- hi;
        m.refc.(n) <- 0;
        (* Recompute the bucket: [alloc] may have grown the table. *)
        let b = hash3 lvl lo hi m.bucket_mask in
        m.hnext.(n) <- m.buckets.(b);
        m.buckets.(b) <- n;
        n
      end
      else if m.lvl.(n) = lvl && m.lo.(n) = lo && m.hi.(n) = hi then n
      else find m.hnext.(n)
    in
    find m.buckets.(b)
  end

let var m lvl = mk m lvl zero one
let nvar m lvl = mk m lvl one zero

let addref m n =
  m.refc.(n) <- m.refc.(n) + 1;
  n

let delref m n =
  assert (m.refc.(n) > 0);
  m.refc.(n) <- m.refc.(n) - 1

let iter_live m f =
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark then f n
  done

let visited_clear m = Bytes.fill m.visited 0 (Bytes.length m.visited) '\000'
let visited_mem m n = Bytes.get m.visited n <> '\000'
let visited_add m n = Bytes.set m.visited n '\001'
