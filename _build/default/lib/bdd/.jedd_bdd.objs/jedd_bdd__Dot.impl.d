lib/bdd/dot.ml: Array Buffer Count Format Hashtbl Manager Printf String
