lib/bdd/count.ml: Array Hashtbl List Manager
