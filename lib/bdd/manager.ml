type node = int

let zero = 0
let one = 1
let terminal_level = max_int lsr 1

(* -- Operation-cache tag registry --------------------------------------- *)

(* Every algorithm module that memoises through the shared operation
   cache registers a tag at module-initialisation time.  The registry is
   global (tags are plain ints baked into cache keys, identical for every
   manager) and gives each tag a stable human-readable name so per-tag
   statistics can be reported by the profiler and the benchmark JSON. *)

let max_tags = 64
let tag_names = Array.make max_tags ""
let registered_tags = ref 0

let register_tag name =
  let t = !registered_tags in
  if t >= max_tags then invalid_arg "Manager.register_tag: tag space exhausted";
  incr registered_tags;
  tag_names.(t) <- name;
  t

let tag_name t =
  if t < 0 || t >= !registered_tags then invalid_arg "Manager.tag_name"
  else tag_names.(t)

type cache_stat = {
  tag : int;
  name : string;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
}

(* Growable int vector used by the per-level node index a reorder
   session maintains. *)
type vec = { mutable data : int array; mutable len : int }

let vec_make () = { data = Array.make 16 0; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let d = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 d 0 v.len;
    v.data <- d
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(* -- Parallel-mode state ------------------------------------------------ *)

(* Under OCaml 5 domains the manager can be switched into parallel mode:
   the unique table stays one hash table but its buckets are guarded by
   a fixed set of stripe locks, node allocation is served from
   per-domain chunks carved off the shared free list, and every domain
   memoises through its own operation cache (the shared cache of the
   sequential mode is left untouched and resumes on exit).  GC and
   reordering become stop-the-world sections: registered domains park at
   their next [checkpoint], parallel-apply regions drain, then the
   coordinator runs alone. *)

let max_slots = 64
let chunk_cap = 256
let nstripes = 256
let stripe_mask = nstripes - 1

(* A node carved out of the free list into a domain-local chunk carries
   [lvl] = [chunk_mark]: not free (the free-list rebuild must not
   re-thread it) and not allocated (GC must not sweep or hash it). *)
let chunk_mark = -2

type chunk = { cnodes : int array; mutable clen : int }

type slot_state = {
  s_cache : int array; (* same geometry as the shared cache *)
  s_hit : int array;
  s_miss : int array;
  s_store : int array;
  s_evict : int array;
  s_chunk : chunk;
}

type par_state = {
  p_epoch : int;
  stripe_locks : Mutex.t array;
  refc_locks : Mutex.t array;
  alloc_lock : Mutex.t;
  slot_lock : Mutex.t;
  slots : slot_state option array;
  mutable nslots : int;
  (* stop-the-world rendezvous *)
  stw_lock : Mutex.t;
  stw_cond : Condition.t;
  stw_want : bool Atomic.t;
  mutable stw_owner : int; (* Domain id of the coordinator, -1 when none *)
  mutable parked : int;
  mutable registered : int; (* domains that park at checkpoints *)
  mutable active_regions : int; (* in-flight parallel-apply regions *)
  mutable depth : int; (* enter_parallel nesting *)
}

(* A free node has [lvl] = -1 and its [hnext] field threads the free
   list.  Allocated nodes thread [hnext] through their unique-table
   bucket. *)
type t = {
  uid : int;
  mutable nvars : int;
  mutable capacity : int;
  mutable lvl : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable refc : int array;
  mutable hnext : int array;
  mutable buckets : int array;
  mutable bucket_mask : int;
  mutable free_head : int;
  mutable free_count : int;
  mutable allocated : int; (* nodes ever handed out and not swept *)
  mutable peak : int;
  mutable gcs : int;
  mutable gc_millis : float;
  mutable grows : int;
  mutable grow_millis : float;
  mutable node_limit : int; (* capacity ceiling; 0 = unlimited *)
  (* Whether hitting the budget wall may collect before raising.  The
     default suits callers that abandon the whole computation on
     [Out_of_nodes]: reclaim eagerly so the handler sees a clean table.
     Engines that *resume* after catching it (the hybrid backend falls
     back to out-of-core mid-expression) must clear this: a collection
     here would recycle the caller's in-flight unreferenced
     intermediates, and the resumed computation would read stale
     handles.  With the flag off, garbage waits for the next checkpoint
     — the designated safe point where everything live holds a ref. *)
  mutable gc_on_exhaustion : bool;
  (* N-way set-associative operation cache.  Each entry is
     [entry_ints] consecutive ints: tag, a, b, c, result, generation.
     A set is [ways] consecutive entries; lookups scan the set and
     promote hits toward the front, stores insert at the front and
     push the rest down (evicting the last way). *)
  cache : int array;
  ways : int;
  set_mask : int;
  mutable cache_gen : int;
  hit_ct : int array; (* per tag *)
  miss_ct : int array;
  store_ct : int array;
  evict_ct : int array;
  mutable marked : Bytes.t;
  mutable visited : Bytes.t;
  (* Dynamic variable order.  A variable keeps its id (allocation order)
     for its whole life; [var2level]/[level2var] map between ids and the
     current physical levels.  Both are the identity until the first
     reorder. *)
  mutable var2level : int array;
  mutable level2var : int array;
  mutable swaps : int; (* adjacent level exchanges performed *)
  mutable order_gen : int; (* bumped on every swap; stamps order-dependent memos *)
  mutable reorders : int; (* reorder passes recorded via [record_reorder] *)
  mutable reorder_millis : float;
  mutable reorder_aborts : int; (* max-growth aborts reported by the engine *)
  mutable reorder_hook : (unit -> unit) option;
  mutable reorder_threshold : int; (* 0 disables the auto trigger *)
  mutable in_reorder : bool;
  (* Per-level index of allocated nodes, alive only inside a reorder
     session ([reorder_begin] .. [reorder_end]); rebuilt by [gc]. *)
  mutable level_index : vec array option;
  (* Parallel mode: [Some p] between [enter_parallel]/[exit_parallel]. *)
  mutable par : par_state option;
  mutable par_epochs : int;
  (* Frozen (read-only arena) mode: refcounts, GC, reordering and
     variable allocation are all disabled; see [freeze]. *)
  mutable frozen : bool;
  mutable frozen_live : int; (* allocated nodes right after [freeze] *)
  mutable frozen_sweeps : int;
  (* Cumulative parallel-mode statistics (survive [exit_parallel]). *)
  mutable stw_sections : int;
  mutable barrier_waits : int;
  mutable chunk_refills : int;
  mutable par_domains_used : int;
}

let free_mark = -1
let entry_ints = 6

let hash3 a b c mask =
  let h = (a * 12582917) lxor (b * 4256249) lxor (c * 0x9e3779b9) in
  (h lxor (h lsr 16)) land mask

let next_uid = ref 0

exception Out_of_nodes

exception Frozen of string
(* Raised by every mutating entry point of a frozen manager. *)

let frozen_error what =
  raise
    (Frozen
       (Printf.sprintf
          "%s: the universe is frozen (read-only serving mode)" what))

let create ?(node_capacity = 1 lsl 15) ?(cache_bits = 14) ?(cache_ways = 4)
    ?(node_limit = 0) () =
  if cache_ways < 1 then invalid_arg "Manager.create: cache_ways must be >= 1";
  incr next_uid;
  let uid = !next_uid in
  let rec pow2_below n acc = if acc * 2 > n then acc else pow2_below n (acc * 2) in
  let capacity = max 1024 node_capacity in
  (* A node budget is a true ceiling: the initial table must fit under it
     too (rounded down to a power of two for mask indexing). *)
  let capacity =
    if node_limit > 0 && capacity > node_limit then
      pow2_below (max 1024 node_limit) 1024
    else capacity
  in
  let entries = max cache_ways (1 lsl cache_bits) in
  let sets = entries / cache_ways in
  (* round the set count down to a power of two for mask indexing *)
  let sets = pow2_below sets 1 in
  let m =
    {
      uid;
      nvars = 0;
      capacity;
      lvl = Array.make capacity free_mark;
      lo = Array.make capacity 0;
      hi = Array.make capacity 0;
      refc = Array.make capacity 0;
      hnext = Array.make capacity (-1);
      buckets = Array.make capacity (-1);
      bucket_mask = capacity - 1;
      free_head = -1;
      free_count = 0;
      allocated = 2;
      peak = 2;
      gcs = 0;
      gc_millis = 0.0;
      grows = 0;
      grow_millis = 0.0;
      node_limit;
      gc_on_exhaustion = true;
      cache = Array.make (sets * cache_ways * entry_ints) (-1);
      ways = cache_ways;
      set_mask = sets - 1;
      cache_gen = 1; (* entries start at gen 0: all invalid *)
      hit_ct = Array.make max_tags 0;
      miss_ct = Array.make max_tags 0;
      store_ct = Array.make max_tags 0;
      evict_ct = Array.make max_tags 0;
      marked = Bytes.make capacity '\000';
      visited = Bytes.make capacity '\000';
      var2level = [||];
      level2var = [||];
      swaps = 0;
      order_gen = 0;
      reorders = 0;
      reorder_millis = 0.0;
      reorder_aborts = 0;
      reorder_hook = None;
      reorder_threshold = 0;
      in_reorder = false;
      level_index = None;
      par = None;
      par_epochs = 0;
      frozen = false;
      frozen_live = 0;
      frozen_sweeps = 0;
      stw_sections = 0;
      barrier_waits = 0;
      chunk_refills = 0;
      par_domains_used = 0;
    }
  in
  (* Terminals: permanently allocated, never hashed, never swept. *)
  m.lvl.(0) <- terminal_level;
  m.lvl.(1) <- terminal_level;
  m.refc.(0) <- 1;
  m.refc.(1) <- 1;
  (* Thread the rest into the free list. *)
  for i = capacity - 1 downto 2 do
    m.hnext.(i) <- m.free_head;
    m.lvl.(i) <- free_mark;
    m.free_head <- i;
    m.free_count <- m.free_count + 1
  done;
  m

let ensure_order_capacity m n =
  if Array.length m.var2level < n then begin
    let cap = max 16 (max n (2 * Array.length m.var2level)) in
    let grow a =
      let a' = Array.make cap (-1) in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    m.var2level <- grow m.var2level;
    m.level2var <- grow m.level2var
  end

(* -- Per-domain slots ---------------------------------------------------- *)

(* Each domain that touches a parallel-mode manager claims a slot holding
   its private operation cache and allocation chunk.  Slots are found
   through domain-local storage, keyed by (manager uid, parallel epoch) so
   stale entries from an earlier [enter_parallel] window — or from another
   manager — are never confused with live ones. *)

type dls_entry = {
  e_uid : int;
  e_epoch : int;
  e_slot : int;
  mutable e_registered : bool; (* this domain parks at checkpoints *)
}

let dls_key : dls_entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let dls_find m (p : par_state) =
  let cell = Domain.DLS.get dls_key in
  let rec find = function
    | [] -> None
    | e :: _ when e.e_uid = m.uid && e.e_epoch = p.p_epoch -> Some e
    | _ :: tl -> find tl
  in
  find !cell

let fresh_slot m =
  let sets = m.set_mask + 1 in
  {
    s_cache = Array.make (sets * m.ways * entry_ints) (-1);
    s_hit = Array.make max_tags 0;
    s_miss = Array.make max_tags 0;
    s_store = Array.make max_tags 0;
    s_evict = Array.make max_tags 0;
    s_chunk = { cnodes = Array.make chunk_cap 0; clen = 0 };
  }

let dls_entry m (p : par_state) =
  match dls_find m p with
  | Some e -> e
  | None ->
    Mutex.lock p.slot_lock;
    if p.nslots >= max_slots then begin
      Mutex.unlock p.slot_lock;
      invalid_arg "Manager: too many concurrent domains (max 64)"
    end;
    let s = p.nslots in
    p.slots.(s) <- Some (fresh_slot m);
    p.nslots <- s + 1;
    if p.nslots > m.par_domains_used then m.par_domains_used <- p.nslots;
    Mutex.unlock p.slot_lock;
    let e = { e_uid = m.uid; e_epoch = p.p_epoch; e_slot = s; e_registered = false } in
    let cell = Domain.DLS.get dls_key in
    cell := e :: List.filter (fun o -> o.e_uid <> m.uid) !cell;
    e

let slot_of m (p : par_state) =
  match p.slots.((dls_entry m p).e_slot) with
  | Some s -> s
  | None -> assert false

let new_var m =
  if m.frozen then frozen_error "Manager.new_var";
  match m.par with
  | None ->
    let v = m.nvars in
    m.nvars <- v + 1;
    (* The fresh variable enters at the bottom of the current order; since
       existing variables occupy levels [0, v), the new level is [v]. *)
    ensure_order_capacity m m.nvars;
    m.var2level.(v) <- v;
    m.level2var.(v) <- v;
    v
  | Some p ->
    (* Runtime scratch-domain declarations can race; serialise them.
       [ensure_order_capacity] replaces the map arrays, but concurrent
       readers only ever look up variables that existed before their
       operation started, and the old arrays keep those entries. *)
    Mutex.lock p.slot_lock;
    let v = m.nvars in
    m.nvars <- v + 1;
    ensure_order_capacity m m.nvars;
    m.var2level.(v) <- v;
    m.level2var.(v) <- v;
    Mutex.unlock p.slot_lock;
    v

let level_of_var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Manager.level_of_var";
  m.var2level.(v)

let var_at_level m l =
  if l < 0 || l >= m.nvars then invalid_arg "Manager.var_at_level";
  m.level2var.(l)

let uid m = m.uid
let num_vars m = m.nvars
let level m n = m.lvl.(n)
let low m n = m.lo.(n)
let high m n = m.hi.(n)
let is_terminal n = n < 2
let live_nodes m = m.allocated
let peak_nodes m = m.peak
let gc_count m = m.gcs
let gc_millis m = m.gc_millis
let grow_count m = m.grows
let grow_millis m = m.grow_millis

let set_node_limit m limit =
  m.node_limit <- (match limit with Some n when n > 0 -> n | _ -> 0)

let node_limit m = if m.node_limit > 0 then Some m.node_limit else None
let set_gc_on_exhaustion m b = m.gc_on_exhaustion <- b
let refcount m n = m.refc.(n)
let order_gen m = m.order_gen
let swap_count m = m.swaps
let reorder_count m = m.reorders
let reorder_millis m = m.reorder_millis
let reorder_aborts m = m.reorder_aborts

let record_reorder m ~millis ~aborts =
  m.reorders <- m.reorders + 1;
  m.reorder_millis <- m.reorder_millis +. millis;
  m.reorder_aborts <- m.reorder_aborts + aborts

let set_reorder_hook m hook = m.reorder_hook <- hook
let set_reorder_threshold m n = m.reorder_threshold <- max 0 n
let reorder_threshold m = m.reorder_threshold
let in_reorder m = m.in_reorder

(* Invalidation is a generation bump: O(1) instead of an O(cache) wipe.
   Entries stamped with an older generation fail the lookup check and are
   recycled by the next store to their slot. *)
let clear_caches m = m.cache_gen <- m.cache_gen + 1

let cache_lookup_in m t hit_ct miss_ct tag a b c =
  let set = hash3 (a lxor (tag * 0x85ebca6b)) b c m.set_mask in
  let base = set * m.ways * entry_ints in
  let gen = m.cache_gen in
  let ways = m.ways in
  let rec scan i =
    if i >= ways then begin
      miss_ct.(tag) <- miss_ct.(tag) + 1;
      -1
    end
    else
      let idx = base + (i * entry_ints) in
      if
        t.(idx + 5) = gen
        && t.(idx) = tag
        && t.(idx + 1) = a
        && t.(idx + 2) = b
        && t.(idx + 3) = c
      then begin
        let r = t.(idx + 4) in
        (* promote: swap with the front entry so repeated winners stay
           resident (cheap approximation of LRU) *)
        if i > 0 then begin
          for k = 0 to entry_ints - 1 do
            let tmp = t.(base + k) in
            t.(base + k) <- t.(idx + k);
            t.(idx + k) <- tmp
          done
        end;
        hit_ct.(tag) <- hit_ct.(tag) + 1;
        r
      end
      else scan (i + 1)
  in
  scan 0

let cache_store_in m t store_ct evict_ct tag a b c result =
  let set = hash3 (a lxor (tag * 0x85ebca6b)) b c m.set_mask in
  let base = set * m.ways * entry_ints in
  let last = base + ((m.ways - 1) * entry_ints) in
  (* the last way is the victim; count it if it held a live entry *)
  let victim_tag = t.(last) in
  if t.(last + 5) = m.cache_gen && victim_tag >= 0 && victim_tag < max_tags then
    evict_ct.(victim_tag) <- evict_ct.(victim_tag) + 1;
  if m.ways > 1 then
    Array.blit t base t (base + entry_ints) ((m.ways - 1) * entry_ints);
  t.(base) <- tag;
  t.(base + 1) <- a;
  t.(base + 2) <- b;
  t.(base + 3) <- c;
  t.(base + 4) <- result;
  t.(base + 5) <- m.cache_gen;
  store_ct.(tag) <- store_ct.(tag) + 1

(* In parallel mode every domain memoises through its own cache (found
   via domain-local storage); the shared cache is neither read nor
   written, so it needs no locks and resumes untouched on exit. *)
let cache_lookup m tag a b c =
  match m.par with
  | None -> cache_lookup_in m m.cache m.hit_ct m.miss_ct tag a b c
  | Some p ->
    let sl = slot_of m p in
    cache_lookup_in m sl.s_cache sl.s_hit sl.s_miss tag a b c

let cache_store m tag a b c result =
  match m.par with
  | None -> cache_store_in m m.cache m.store_ct m.evict_ct tag a b c result
  | Some p ->
    let sl = slot_of m p in
    cache_store_in m sl.s_cache sl.s_store sl.s_evict tag a b c result

(* Statistics readers fold the live per-domain counters on top of the
   base ones, so profiler snapshots taken during a parallel phase stay
   monotone; [exit_parallel] merges the slot counters into the base
   arrays for good.  Reads of other domains' counters are racy but each
   cell is a single word, so a reader sees a (possibly slightly stale)
   valid count. *)
let slot_sum m tag pick =
  match m.par with
  | None -> 0
  | Some p ->
    let acc = ref 0 in
    for i = 0 to p.nslots - 1 do
      match p.slots.(i) with
      | Some sl -> acc := !acc + (pick sl).(tag)
      | None -> ()
    done;
    !acc

let cache_stats m =
  let acc = ref [] in
  for tag = !registered_tags - 1 downto 0 do
    acc :=
      {
        tag;
        name = tag_names.(tag);
        hits = m.hit_ct.(tag) + slot_sum m tag (fun s -> s.s_hit);
        misses = m.miss_ct.(tag) + slot_sum m tag (fun s -> s.s_miss);
        stores = m.store_ct.(tag) + slot_sum m tag (fun s -> s.s_store);
        evictions = m.evict_ct.(tag) + slot_sum m tag (fun s -> s.s_evict);
      }
      :: !acc
  done;
  !acc

let cache_totals m =
  let h = ref 0 and mi = ref 0 and e = ref 0 in
  for tag = 0 to !registered_tags - 1 do
    h := !h + m.hit_ct.(tag) + slot_sum m tag (fun s -> s.s_hit);
    mi := !mi + m.miss_ct.(tag) + slot_sum m tag (fun s -> s.s_miss);
    e := !e + m.evict_ct.(tag) + slot_sum m tag (fun s -> s.s_evict)
  done;
  (!h, !mi, !e)

let cache_config m = ((m.set_mask + 1) * m.ways, m.ways)

(* -- Growth ------------------------------------------------------------ *)

let grow_array a capacity fill =
  let a' = Array.make capacity fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let rebuild_buckets m =
  Array.fill m.buckets 0 (Array.length m.buckets) (-1);
  (* Free-list entries are re-threaded too, so rebuild it as we go. *)
  m.free_head <- -1;
  m.free_count <- 0;
  for n = m.capacity - 1 downto 2 do
    if m.lvl.(n) = free_mark then begin
      m.hnext.(n) <- m.free_head;
      m.free_head <- n;
      m.free_count <- m.free_count + 1
    end
    else if m.lvl.(n) <> chunk_mark then begin
      (* nodes parked in a domain's allocation chunk are neither free nor
         allocated: leave them to their owner *)
      let b = hash3 m.lvl.(n) m.lo.(n) m.hi.(n) m.bucket_mask in
      m.hnext.(n) <- m.buckets.(b);
      m.buckets.(b) <- n
    end
  done

(* Growing preserves node handles, so cached results stay valid: the
   operation cache is deliberately left untouched here. *)
let grow m =
  let t0 = Sys.time () in
  let capacity = m.capacity * 2 in
  m.lvl <- grow_array m.lvl capacity free_mark;
  m.lo <- grow_array m.lo capacity 0;
  m.hi <- grow_array m.hi capacity 0;
  m.refc <- grow_array m.refc capacity 0;
  m.hnext <- grow_array m.hnext capacity (-1);
  m.buckets <- Array.make capacity (-1);
  m.bucket_mask <- capacity - 1;
  let marked = Bytes.make capacity '\000' in
  Bytes.blit m.marked 0 marked 0 (Bytes.length m.marked);
  m.marked <- marked;
  let visited = Bytes.make capacity '\000' in
  Bytes.blit m.visited 0 visited 0 (Bytes.length m.visited);
  m.visited <- visited;
  m.capacity <- capacity;
  rebuild_buckets m;
  m.grows <- m.grows + 1;
  m.grow_millis <- m.grow_millis +. ((Sys.time () -. t0) *. 1000.0)

(* -- Stop-the-world rendezvous ------------------------------------------ *)

(* GC and reordering mutate the table wholesale, so in parallel mode they
   run inside [exclusive]: the coordinator raises [stw_want], registered
   domains park at their next [checkpoint] (their only safepoint),
   parallel-apply regions drain, and then the coordinator has the store
   to itself.  A domain blocked waiting to start a region counts itself
   as parked so the coordinator never waits on it. *)

let self_id () = (Domain.self () :> int)

let park_loop m (p : par_state) =
  (* caller holds [p.stw_lock] *)
  while Atomic.get p.stw_want && p.stw_owner <> self_id () do
    p.parked <- p.parked + 1;
    m.barrier_waits <- m.barrier_waits + 1;
    Condition.broadcast p.stw_cond;
    Condition.wait p.stw_cond p.stw_lock;
    p.parked <- p.parked - 1
  done

let park_if_stw m (p : par_state) =
  if Atomic.get p.stw_want && p.stw_owner <> self_id () then begin
    Mutex.lock p.stw_lock;
    park_loop m p;
    Condition.broadcast p.stw_cond;
    Mutex.unlock p.stw_lock
  end

let region_begin m =
  match m.par with
  | None -> ()
  | Some p ->
    Mutex.lock p.stw_lock;
    park_loop m p;
    p.active_regions <- p.active_regions + 1;
    Mutex.unlock p.stw_lock

(* Unconditional region entry: does NOT wait out a pending stop-the-world
   phase, so it is only sound when the caller guarantees another region
   is already open and stays open (the coordinator is then blocked on
   that one anyway).  Used by pool workers joining the region their
   run's caller holds. *)
let region_join m =
  match m.par with
  | None -> ()
  | Some p ->
    Mutex.lock p.stw_lock;
    p.active_regions <- p.active_regions + 1;
    Mutex.unlock p.stw_lock

let region_end m =
  match m.par with
  | None -> ()
  | Some p ->
    Mutex.lock p.stw_lock;
    p.active_regions <- p.active_regions - 1;
    Condition.broadcast p.stw_cond;
    Mutex.unlock p.stw_lock

let stw_register m =
  match m.par with
  | None -> ()
  | Some p ->
    let e = dls_entry m p in
    if not e.e_registered then begin
      Mutex.lock p.stw_lock;
      e.e_registered <- true;
      p.registered <- p.registered + 1;
      Condition.broadcast p.stw_cond;
      (* if a stop-the-world phase is in flight, park before touching
         the node store: from this point the coordinator counts on us *)
      park_loop m p;
      Mutex.unlock p.stw_lock
    end

let stw_unregister m =
  match m.par with
  | None -> ()
  | Some p -> (
    match dls_find m p with
    | Some e when e.e_registered ->
      Mutex.lock p.stw_lock;
      e.e_registered <- false;
      p.registered <- p.registered - 1;
      Condition.broadcast p.stw_cond;
      Mutex.unlock p.stw_lock
    | _ -> ())

let exclusive m f =
  match m.par with
  | None -> f ()
  | Some p ->
    let self = self_id () in
    if p.stw_owner = self then f () (* reentrant: already coordinating *)
    else begin
      Mutex.lock p.stw_lock;
      (* wait out any current coordinator, counting as parked meanwhile *)
      park_loop m p;
      Atomic.set p.stw_want true;
      p.stw_owner <- self;
      let self_registered =
        match dls_find m p with Some e -> e.e_registered | None -> false
      in
      (* [need] is recomputed each round: domains may register or
         unregister while we wait (both broadcast) *)
      while
        (let need = p.registered - if self_registered then 1 else 0 in
         p.parked < need)
        || p.active_regions > 0
      do
        Condition.wait p.stw_cond p.stw_lock
      done;
      m.stw_sections <- m.stw_sections + 1;
      Mutex.unlock p.stw_lock;
      let finish () =
        Mutex.lock p.stw_lock;
        p.stw_owner <- -1;
        Atomic.set p.stw_want false;
        Condition.broadcast p.stw_cond;
        Mutex.unlock p.stw_lock
      in
      Fun.protect ~finally:finish f
    end

(* Return every chunk-held node to the shared free list.  Runs only at
   quiescence (inside a stop-the-world section or at [exit_parallel]),
   when no domain is consuming its chunk. *)
let flush_chunks m (p : par_state) =
  Mutex.lock p.alloc_lock;
  for i = 0 to p.nslots - 1 do
    match p.slots.(i) with
    | Some sl ->
      let ch = sl.s_chunk in
      for k = 0 to ch.clen - 1 do
        let n = ch.cnodes.(k) in
        m.lvl.(n) <- free_mark;
        m.hnext.(n) <- m.free_head;
        m.free_head <- n;
        m.free_count <- m.free_count + 1
      done;
      m.allocated <- m.allocated - ch.clen;
      ch.clen <- 0
    | None -> ()
  done;
  Mutex.unlock p.alloc_lock

(* -- Reorder sessions --------------------------------------------------- *)

let build_level_index m =
  let idx = Array.init (max 1 m.nvars) (fun _ -> vec_make ()) in
  for n = 2 to m.capacity - 1 do
    let l = m.lvl.(n) in
    if l <> free_mark && l < terminal_level then vec_push idx.(l) n
  done;
  idx

(* Opening a session materialises the per-level node index [swap_adjacent]
   works from; it stays valid across swaps and table growth (handles are
   stable) and is rebuilt by [gc] (which recycles handles). *)
let reorder_begin m =
  if m.level_index = None then m.level_index <- Some (build_level_index m)

let reorder_end m = m.level_index <- None

(* -- Garbage collection ------------------------------------------------ *)

let mark_from m root =
  if root >= 2 && Bytes.get m.marked root = '\000' then begin
    let stack = ref [ root ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
        stack := rest;
        if n >= 2 && Bytes.get m.marked n = '\000' then begin
          Bytes.set m.marked n '\001';
          stack := m.lo.(n) :: m.hi.(n) :: !stack
        end
    done
  end

let gc_raw m =
  let t0 = Sys.time () in
  m.gcs <- m.gcs + 1;
  (* Collection frees (and later recycles) node handles, so every cached
     result is suspect: retire the whole generation. *)
  clear_caches m;
  Bytes.fill m.marked 0 (Bytes.length m.marked) '\000';
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark && m.refc.(n) > 0 then mark_from m n
  done;
  (* Sweep: unmarked allocated nodes become free. *)
  m.allocated <- 2;
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark then
      if Bytes.get m.marked n = '\000' then m.lvl.(n) <- free_mark
      else m.allocated <- m.allocated + 1
  done;
  rebuild_buckets m;
  (* Collection recycles handles, so an open reorder session's per-level
     index must be rebuilt from the survivors. *)
  if m.level_index <> None then m.level_index <- Some (build_level_index m);
  m.gc_millis <- m.gc_millis +. ((Sys.time () -. t0) *. 1000.0)

(* In parallel mode a collection needs the world stopped and every
   domain's allocation chunk returned first (chunk-held nodes are
   invisible to the sweep). *)
let gc m =
  if m.frozen then () (* frozen roots are pinned without refcounts; see
                         [frozen_sweep] for the quiesced reclaim path *)
  else
    match m.par with
    | None -> gc_raw m
    | Some p ->
      exclusive m (fun () ->
          flush_chunks m p;
          gc_raw m)

let checkpoint_seq m =
  (* Auto-reorder trigger: safe points are the only places a reorder may
     run (no recursive operation is in flight), so the hook fires here
     when the live-node population has crossed the configured threshold
     since the last reorder.  [in_reorder] guards against reentry from
     the checkpoints the reorder engine itself performs. *)
  (match m.reorder_hook with
  | Some hook
    when m.reorder_threshold > 0
         && (not m.in_reorder)
         && m.allocated >= m.reorder_threshold ->
    m.in_reorder <- true;
    Fun.protect ~finally:(fun () -> m.in_reorder <- false) hook
  | _ -> ());
  if m.free_count * 4 < m.capacity then begin
    gc m;
    (* If collection freed too little, enlarge so the mutator does not
       immediately bump into the wall again — unless a node budget says
       the next doubling is off-limits; then run on what collection
       recovered and let [alloc] raise if the wall is real. *)
    if
      m.free_count * 4 < m.capacity
      && not (m.node_limit > 0 && m.capacity * 2 > m.node_limit)
    then grow m
  end

let checkpoint m =
  if m.frozen then ()
    (* The whole point of frozen mode: the query path crosses safe
       points without GC, reorder triggers or cache-generation bumps.
       Scratch nodes accumulate until [frozen_sweep]. *)
  else
  match m.par with
  | None -> checkpoint_seq m
  | Some p ->
    (* Checkpoints are the parallel-mode safepoints: park if a
       coordinator wants the world stopped, then apply the usual
       auto-reorder/GC policy inside a stop-the-world section of our
       own.  The triggers are read racily — that only stales the
       decision by one checkpoint; the policy re-checks once exclusive. *)
    park_if_stw m p;
    let wants_reorder =
      m.reorder_threshold > 0 && (not m.in_reorder)
      && m.allocated >= m.reorder_threshold
      && m.reorder_hook <> None
    in
    let wants_gc = m.free_count * 4 < m.capacity in
    if wants_reorder || wants_gc then exclusive m (fun () -> checkpoint_seq m)

(* -- Node creation ------------------------------------------------------ *)

(* Growth against the node budget.  When the free list is empty and
   doubling would overshoot the limit, reclaim whatever garbage is left
   and abandon the current operation: a collection here recycles node
   handles, so in-flight unreferenced intermediates must not be resumed.
   The manager itself stays consistent (caches were retired by [gc]) —
   the handler can release roots and retry, e.g. on the out-of-core
   backend.  Callers that instead *continue* after catching
   [Out_of_nodes] (the hybrid backend) clear [gc_on_exhaustion], making
   this the sequential analogue of [chunk_refill]'s no-GC raise:
   reclaim is deferred to the next checkpoint. *)
let grow_limited m =
  if m.node_limit > 0 && m.capacity * 2 > m.node_limit then begin
    if m.gc_on_exhaustion then gc m;
    raise Out_of_nodes
  end
  else grow m

let alloc m =
  if m.free_head < 0 then grow_limited m;
  let n = m.free_head in
  m.free_head <- m.hnext.(n);
  m.free_count <- m.free_count - 1;
  m.allocated <- m.allocated + 1;
  if m.allocated > m.peak then m.peak <- m.allocated;
  n

let mk_seq m lvl lo hi =
  let b = hash3 lvl lo hi m.bucket_mask in
  let rec find n =
    if n < 0 then begin
      let n = alloc m in
      m.lvl.(n) <- lvl;
      m.lo.(n) <- lo;
      m.hi.(n) <- hi;
      m.refc.(n) <- 0;
      (* Recompute the bucket: [alloc] may have grown the table. *)
      let b = hash3 lvl lo hi m.bucket_mask in
      m.hnext.(n) <- m.buckets.(b);
      m.buckets.(b) <- n;
      n
    end
    else if m.lvl.(n) = lvl && m.lo.(n) = lo && m.hi.(n) = hi then n
    else find m.hnext.(n)
  in
  find m.buckets.(b)

(* Parallel-mode table growth: the caller already holds [alloc_lock];
   acquire every stripe so no [mk] is inside a bucket while the arrays
   are replaced.  The stale old arrays remain valid for all nodes that
   existed when a concurrent reader fetched them, so a racy read through
   a captured reference still sees correct fields. *)
let grow_all_stripes m (p : par_state) =
  if m.node_limit > 0 && m.capacity * 2 > m.node_limit then raise Out_of_nodes;
  for i = 0 to nstripes - 1 do
    Mutex.lock p.stripe_locks.(i)
  done;
  grow m;
  for i = nstripes - 1 downto 0 do
    Mutex.unlock p.stripe_locks.(i)
  done

(* Refill a domain's allocation chunk from the shared free list.  A GC
   here would deadlock (we hold [alloc_lock]; collection needs every
   other domain parked), so when the budget wall is real we raise
   [Out_of_nodes] directly — reclaim happens at the next checkpoint. *)
let chunk_refill m (p : par_state) (sl : slot_state) =
  Mutex.lock p.alloc_lock;
  let ch = sl.s_chunk in
  let oom = ref false in
  (try
     while ch.clen < chunk_cap do
       if m.free_head < 0 then grow_all_stripes m p;
       let n = m.free_head in
       m.free_head <- m.hnext.(n);
       m.free_count <- m.free_count - 1;
       m.lvl.(n) <- chunk_mark;
       ch.cnodes.(ch.clen) <- n;
       ch.clen <- ch.clen + 1;
       m.allocated <- m.allocated + 1
     done
   with Out_of_nodes -> oom := true (* a partial refill still makes progress *));
  if m.allocated > m.peak then m.peak <- m.allocated;
  m.chunk_refills <- m.chunk_refills + 1;
  let exhausted = !oom && ch.clen = 0 in
  Mutex.unlock p.alloc_lock;
  if exhausted then raise Out_of_nodes

let rec mk_par m (p : par_state) (sl : slot_state) lvl lo hi =
  (* Reserve a node BEFORE taking the stripe lock: the bucket critical
     section must never wait on [alloc_lock] (lock-order discipline:
     alloc_lock > stripe locks, never the reverse). *)
  if sl.s_chunk.clen = 0 then chunk_refill m p sl;
  let mask0 = m.bucket_mask in
  let b = hash3 lvl lo hi mask0 in
  let lk = p.stripe_locks.(b land stripe_mask) in
  Mutex.lock lk;
  if m.bucket_mask <> mask0 then begin
    (* the table grew between hashing and locking; rehash *)
    Mutex.unlock lk;
    mk_par m p sl lvl lo hi
  end
  else begin
    let rec find n =
      if n < 0 then begin
        let ch = sl.s_chunk in
        ch.clen <- ch.clen - 1;
        let n = ch.cnodes.(ch.clen) in
        m.lvl.(n) <- lvl;
        m.lo.(n) <- lo;
        m.hi.(n) <- hi;
        m.refc.(n) <- 0;
        m.hnext.(n) <- m.buckets.(b);
        m.buckets.(b) <- n;
        n
      end
      else if m.lvl.(n) = lvl && m.lo.(n) = lo && m.hi.(n) = hi then n
      else find m.hnext.(n)
    in
    let r = find m.buckets.(b) in
    Mutex.unlock lk;
    r
  end

let mk m lvl lo hi =
  if lo = hi then lo
  else begin
    assert (lvl >= 0 && lvl < m.lvl.(lo) && lvl < m.lvl.(hi));
    match m.par with
    | None -> mk_seq m lvl lo hi
    | Some p -> mk_par m p (slot_of m p) lvl lo hi
  end

let var m lvl = mk m lvl zero one
let nvar m lvl = mk m lvl one zero

(* -- Adjacent level exchange -------------------------------------------- *)

let unlink m n =
  let b = hash3 m.lvl.(n) m.lo.(n) m.hi.(n) m.bucket_mask in
  if m.buckets.(b) = n then m.buckets.(b) <- m.hnext.(n)
  else begin
    let rec go p =
      if m.hnext.(p) = n then m.hnext.(p) <- m.hnext.(n)
      else go m.hnext.(p)
    in
    go m.buckets.(b)
  end

let relink m n =
  let b = hash3 m.lvl.(n) m.lo.(n) m.hi.(n) m.bucket_mask in
  m.hnext.(n) <- m.buckets.(b);
  m.buckets.(b) <- n

(* [swap_adjacent m l] exchanges levels [l] and [l+1] of the order, in
   place over the unique table.  Every existing handle keeps the boolean
   function it denoted before the swap (over variable ids), so external
   references, refcounts and inter-manager memo tables stay valid; only
   level-dependent structural memos die, which the [order_gen] bump and
   cache invalidation take care of.

   Nodes at level [l] that do not depend on level [l+1], and all nodes at
   level [l+1], merely trade levels.  A level-[l] node with a child at
   level [l+1] is rewritten in place from its four grandcofactors; the
   two new children are made by [mk] at level [l+1].  Canonicity
   guarantees the rewritten node cannot collide with any relabeled node
   (a collision would equate two functions that were distinct before the
   swap). *)
let swap_adjacent m l =
  if m.frozen then frozen_error "Manager.swap_adjacent";
  if l < 0 || l + 1 >= m.nvars then invalid_arg "Manager.swap_adjacent";
  let standalone = m.level_index = None in
  if standalone then reorder_begin m;
  let idx = match m.level_index with Some i -> i | None -> assert false in
  let upper = idx.(l) and lower = idx.(l + 1) in
  (* Pre-grow so [mk] cannot trigger a mid-surgery table growth: each
     rewritten node allocates at most two children. *)
  while m.free_count < (2 * upper.len) + 64 do
    grow m
  done;
  (* Partition the upper rank before any relabeling. *)
  let deps = vec_make () and indeps = vec_make () in
  for i = 0 to upper.len - 1 do
    let n = upper.data.(i) in
    if m.lvl.(m.lo.(n)) = l + 1 || m.lvl.(m.hi.(n)) = l + 1 then
      vec_push deps n
    else vec_push indeps n
  done;
  (* Unlink both ranks while their stored keys still match. *)
  for i = 0 to upper.len - 1 do
    unlink m upper.data.(i)
  done;
  for i = 0 to lower.len - 1 do
    unlink m lower.data.(i)
  done;
  (* Independent upper nodes and the whole lower rank just trade levels:
     under the swapped variable<->level maps they denote the same
     functions. *)
  for i = 0 to indeps.len - 1 do
    let n = indeps.data.(i) in
    m.lvl.(n) <- l + 1;
    relink m n
  done;
  for i = 0 to lower.len - 1 do
    let n = lower.data.(i) in
    m.lvl.(n) <- l;
    relink m n
  done;
  (* Rewrite each dependent node in place from its grandcofactors, so the
     handle keeps denoting the same function with the variables read in
     the new order.  Old lower-rank children now sit at level [l]; true
     children of the node can never be at [l] otherwise. *)
  for i = 0 to deps.len - 1 do
    let n = deps.data.(i) in
    let g = m.lo.(n) and h = m.hi.(n) in
    let g0, g1 =
      if (not (is_terminal g)) && m.lvl.(g) = l then (m.lo.(g), m.hi.(g))
      else (g, g)
    in
    let h0, h1 =
      if (not (is_terminal h)) && m.lvl.(h) = l then (m.lo.(h), m.hi.(h))
      else (h, h)
    in
    let c0 = mk m (l + 1) g0 h0 in
    let c1 = mk m (l + 1) g1 h1 in
    m.lo.(n) <- c0;
    m.hi.(n) <- c1;
    relink m n
  done;
  (* Rebuild the two touched ranks of the index: level [l] now holds the
     rewritten dependents plus the relabeled old lower rank; level [l+1]
     holds the relabeled independents plus whatever [mk] returned or
     created there (deduplicated through the scratch visited set). *)
  let new_upper = vec_make () in
  for i = 0 to deps.len - 1 do
    vec_push new_upper deps.data.(i)
  done;
  for i = 0 to lower.len - 1 do
    vec_push new_upper lower.data.(i)
  done;
  let new_lower = vec_make () in
  let add c =
    if
      (not (is_terminal c))
      && m.lvl.(c) = l + 1
      && Bytes.get m.visited c = '\000'
    then begin
      Bytes.set m.visited c '\001';
      vec_push new_lower c
    end
  in
  for i = 0 to indeps.len - 1 do
    add indeps.data.(i)
  done;
  for i = 0 to deps.len - 1 do
    add m.lo.(deps.data.(i));
    add m.hi.(deps.data.(i))
  done;
  for i = 0 to new_lower.len - 1 do
    Bytes.set m.visited new_lower.data.(i) '\000'
  done;
  idx.(l) <- new_upper;
  idx.(l + 1) <- new_lower;
  (* Swap the variable<->level maps and retire order-dependent memos. *)
  let va = m.level2var.(l) and vb = m.level2var.(l + 1) in
  m.level2var.(l) <- vb;
  m.level2var.(l + 1) <- va;
  m.var2level.(va) <- l + 1;
  m.var2level.(vb) <- l;
  m.swaps <- m.swaps + 1;
  m.order_gen <- m.order_gen + 1;
  clear_caches m;
  if standalone then reorder_end m

(* -- Invariant checker --------------------------------------------------- *)

(* Structural audit of the node store, the unique table, the free list
   and the variable-order maps; run by the test suite and the bench smoke
   gate after reordering.  Returns human-readable violations, empty when
   the manager is consistent. *)
let check_invariants m =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  for v = 0 to m.nvars - 1 do
    let l = m.var2level.(v) in
    if l < 0 || l >= m.nvars then err "var %d has out-of-range level %d" v l
    else if m.level2var.(l) <> v then
      err "var2level/level2var disagree at var %d (level %d maps back to %d)"
        v l m.level2var.(l)
  done;
  let free_seen = ref 0 in
  let n = ref m.free_head in
  while !n >= 0 do
    if m.lvl.(!n) <> free_mark then err "free-list node %d is not free" !n;
    incr free_seen;
    n := m.hnext.(!n)
  done;
  if !free_seen <> m.free_count then
    err "free_count %d but the free list threads %d entries" m.free_count
      !free_seen;
  let alloc_seen = ref 2 in
  let chunk_seen = ref 0 in
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) = chunk_mark then begin
      (* granted to a domain's allocation chunk: counted as allocated,
         but carries no node fields yet *)
      incr alloc_seen;
      incr chunk_seen
    end
    else if m.lvl.(n) <> free_mark then begin
      incr alloc_seen;
      let l = m.lvl.(n) and lo = m.lo.(n) and hi = m.hi.(n) in
      if l < 0 || l >= m.nvars then err "node %d has invalid level %d" n l
      else begin
        if lo = hi then err "node %d is redundant (lo = hi = %d)" n lo;
        if m.lvl.(lo) = free_mark || m.lvl.(hi) = free_mark then
          err "node %d has a freed child" n
        else if l >= m.lvl.(lo) || l >= m.lvl.(hi) then
          err "node %d at level %d violates the order invariant" n l;
        let b = hash3 l lo hi m.bucket_mask in
        let count = ref 0 in
        let c = ref m.buckets.(b) in
        while !c >= 0 do
          if m.lvl.(!c) = l && m.lo.(!c) = lo && m.hi.(!c) = hi then
            incr count;
          c := m.hnext.(!c)
        done;
        if !count = 0 then
          err "node %d missing from its unique-table bucket" n;
        if !count > 1 then
          err "node (%d, %d, %d) duplicated in the unique table" l lo hi
      end
    end
  done;
  if !alloc_seen <> m.allocated then
    err "allocated count %d but %d nodes live in the arrays" m.allocated
      !alloc_seen;
  (* Sharded-table / chunk accounting.  Only meaningful at quiescence
     (no domain mid-[mk]); the test suite calls this between parallel
     phases. *)
  (match m.par with
  | None ->
    if !chunk_seen > 0 then
      err "%d chunk-held nodes outside parallel mode" !chunk_seen
  | Some p ->
    let in_chunks = ref 0 in
    for i = 0 to p.nslots - 1 do
      match p.slots.(i) with
      | Some sl -> in_chunks := !in_chunks + sl.s_chunk.clen
      | None -> ()
    done;
    if !in_chunks <> !chunk_seen then
      err "domain chunks hold %d nodes but %d are marked chunk-held"
        !in_chunks !chunk_seen);
  List.rev !errs

(* Refcount traffic from several domains (including GC finalisers
   releasing relation handles) is serialised through a small striped
   lock array.  The critical sections allocate nothing, so an OCaml GC
   finaliser can never re-enter a lock its own domain already holds. *)
let addref m n =
  if m.frozen then n
    (* Ref-count-free query path: roots pinned before the freeze keep
       their counts; relations created by queries are scratch and are
       reclaimed wholesale by [frozen_sweep]. *)
  else
  match m.par with
  | None ->
    m.refc.(n) <- m.refc.(n) + 1;
    n
  | Some p ->
    let lk = p.refc_locks.(n land (Array.length p.refc_locks - 1)) in
    Mutex.lock lk;
    m.refc.(n) <- m.refc.(n) + 1;
    Mutex.unlock lk;
    n

let delref m n =
  if m.frozen then ()
  else
  match m.par with
  | None ->
    assert (m.refc.(n) > 0);
    m.refc.(n) <- m.refc.(n) - 1
  | Some p ->
    let lk = p.refc_locks.(n land (Array.length p.refc_locks - 1)) in
    Mutex.lock lk;
    m.refc.(n) <- m.refc.(n) - 1;
    Mutex.unlock lk

let iter_live m f =
  for n = 2 to m.capacity - 1 do
    if m.lvl.(n) <> free_mark then f n
  done

let visited_clear m = Bytes.fill m.visited 0 (Bytes.length m.visited) '\000'
let visited_mem m n = Bytes.get m.visited n <> '\000'
let visited_add m n = Bytes.set m.visited n '\001'

(* -- Parallel-mode lifecycle -------------------------------------------- *)

(* [enter_parallel] flips every hot path (mk, cache, refcounts,
   checkpoint) onto its locked/per-domain variant; [exit_parallel]
   returns chunk-held nodes, folds per-domain cache statistics into the
   base counters and restores the plain sequential paths.  Calls nest;
   both must run on a single domain at a moment the caller guarantees
   quiescent (no other domain touching the manager), which matches their
   use: the orchestrator flips the mode, then spawns workers / opens a
   task-pool region, and flips back after joining them. *)

let enter_parallel m =
  match m.par with
  | Some p -> p.depth <- p.depth + 1
  | None ->
    m.par_epochs <- m.par_epochs + 1;
    m.par <-
      Some
        {
          p_epoch = m.par_epochs;
          stripe_locks = Array.init nstripes (fun _ -> Mutex.create ());
          refc_locks = Array.init 64 (fun _ -> Mutex.create ());
          alloc_lock = Mutex.create ();
          slot_lock = Mutex.create ();
          slots = Array.make max_slots None;
          nslots = 0;
          stw_lock = Mutex.create ();
          stw_cond = Condition.create ();
          stw_want = Atomic.make false;
          stw_owner = -1;
          parked = 0;
          registered = 0;
          active_regions = 0;
          depth = 1;
        }

let exit_parallel m =
  match m.par with
  | None -> ()
  | Some p ->
    p.depth <- p.depth - 1;
    if p.depth = 0 then begin
      flush_chunks m p;
      (* fold the per-domain cache statistics into the base counters so
         the profiler's monotone snapshots survive the mode switch *)
      for i = 0 to p.nslots - 1 do
        match p.slots.(i) with
        | Some sl ->
          for tag = 0 to max_tags - 1 do
            m.hit_ct.(tag) <- m.hit_ct.(tag) + sl.s_hit.(tag);
            m.miss_ct.(tag) <- m.miss_ct.(tag) + sl.s_miss.(tag);
            m.store_ct.(tag) <- m.store_ct.(tag) + sl.s_store.(tag);
            m.evict_ct.(tag) <- m.evict_ct.(tag) + sl.s_evict.(tag)
          done
        | None -> ()
      done;
      m.par <- None
    end

let in_parallel m = m.par <> None

let with_parallel m f =
  enter_parallel m;
  Fun.protect ~finally:(fun () -> exit_parallel m) f

(* -- Frozen mode --------------------------------------------------------- *)

(* [freeze] turns the manager into a read-only arena for serving: a
   final mark/sweep compacts the live node set (everything unreachable
   from a referenced root is dropped), then refcount traffic, GC,
   auto-reordering, level swaps and variable allocation are all switched
   off.  Queries may still build scratch nodes (select cubes,
   quantification results); those accumulate — ref-count-free — until a
   coordinator with the pool quiesced calls [frozen_sweep], which marks
   from the pinned pre-freeze roots and reclaims everything else.
   Freezing is one-way: a served universe never becomes mutable again. *)

let freeze m =
  if not m.frozen then begin
    if m.par <> None then
      invalid_arg "Manager.freeze: must be called outside parallel mode";
    gc_raw m;
    m.frozen <- true;
    m.frozen_live <- m.allocated
  end

let frozen m = m.frozen
let frozen_live_nodes m = m.frozen_live
let frozen_sweep_count m = m.frozen_sweeps

(* Reclaim query scratch: every node unreachable from a pinned
   (pre-freeze, refc > 0) root dies.  The caller must guarantee
   quiescence — no query evaluating on any domain — which the serve
   pool does by parking its workers first. *)
let frozen_sweep m =
  if not m.frozen then invalid_arg "Manager.frozen_sweep: manager not frozen";
  (match m.par with Some p -> flush_chunks m p | None -> ());
  gc_raw m;
  m.frozen_sweeps <- m.frozen_sweeps + 1

type par_stats = {
  par_active : bool;
  par_domains : int; (* distinct domains that claimed a slot, peak *)
  par_stw_sections : int;
  par_barrier_waits : int;
  par_chunk_refills : int;
  par_registered : int;
}

let par_stats m =
  {
    par_active = m.par <> None;
    par_domains = m.par_domains_used;
    par_stw_sections = m.stw_sections;
    par_barrier_waits = m.barrier_waits;
    par_chunk_refills = m.chunk_refills;
    par_registered = (match m.par with Some p -> p.registered | None -> 0);
  }

(* Per-domain cache counters of the live parallel window: (slot, hits,
   misses, stores, evictions) summed over tags.  Empty outside parallel
   mode. *)
let slot_cache_stats m =
  match m.par with
  | None -> [||]
  | Some p ->
    Array.init p.nslots (fun i ->
        match p.slots.(i) with
        | None -> (i, 0, 0, 0, 0)
        | Some sl ->
          let sum a = Array.fold_left ( + ) 0 a in
          (i, sum sl.s_hit, sum sl.s_miss, sum sl.s_store, sum sl.s_evict))
