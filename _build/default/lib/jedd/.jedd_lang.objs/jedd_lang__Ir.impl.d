lib/jedd/ir.ml: Format List String Tast
