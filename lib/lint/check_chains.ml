(* JL009: redundant rename/projection chains in the lowered IR.

   Chained replace expressions lower to consecutive [IRename] /
   [IProject] instructions feeding each other inside one straight-line
   instruction list.  A rename followed by a rename that maps every
   attribute straight back is pure BDD work for nothing; consecutive
   renames or consecutive projections can always be fused into one
   operation.  [IReplace] is looked through when following the data
   flow: a physical-domain move does not change attribute names. *)

open Jedd_lang

(* m1 then m2 is the identity renaming iff m2 undoes exactly m1 *)
let compose_is_identity (m1 : (string * string) list)
    (m2 : (string * string) list) : bool =
  List.for_all
    (fun (a, b) ->
      match List.assoc_opt b m2 with Some c -> c = a | None -> b = a)
    m1
  && List.for_all (fun (x, _) -> List.exists (fun (_, b) -> b = x) m1) m2

let check_method (prog : Tast.tprogram) (q : string) (m : Ir.cmethod)
    (prov : Lower.method_provenance) : Diag.t list =
  let meth_pos =
    match Hashtbl.find_opt prog.Tast.methods q with
    | Some tm -> tm.Tast.tm_pos
    | None -> { Ast.file = "<ir>"; line = 0; col = 0 }
  in
  let pos_of_reg r =
    match Hashtbl.find_opt prov.Lower.mp_reg_pos r with
    | Some p -> p
    | None -> meth_pos
  in
  let out = ref [] in
  let add r msg =
    out :=
      Diag.make ~code:"JL009" ~severity:Diag.Info ~pos:(pos_of_reg r) msg
      :: !out
  in
  let scan_list (instrs : Ir.instr list) =
    (* producing instruction of each register, within this list *)
    let defs = Hashtbl.create 16 in
    let rec producer r =
      match Hashtbl.find_opt defs r with
      | Some (Ir.IReplace (_, s, _)) -> producer s
      | p -> p
    in
    List.iter
      (fun (i : Ir.instr) ->
        (match i with
        | Ir.IRename (d, s, m2) -> (
          match producer s with
          | Some (Ir.IRename (_, _, m1)) ->
            if compose_is_identity m1 m2 then
              add d
                "redundant rename chain: the second rename undoes the first"
            else
              add d "consecutive renames could be fused into one rename"
          | _ -> ())
        | Ir.IProject (d, s, _) -> (
          match producer s with
          | Some (Ir.IProject _) ->
            add d "consecutive projections could be fused into one projection"
          | _ -> ())
        | _ -> ());
        match i with
        | Ir.ILoad (d, _)
        | Ir.IConst (d, _, _)
        | Ir.ILiteral (d, _, _)
        | Ir.IUnion (d, _, _)
        | Ir.IInter (d, _, _)
        | Ir.IDiff (d, _, _)
        | Ir.IProject (d, _, _)
        | Ir.IRename (d, _, _)
        | Ir.ICopy (d, _, _, _, _)
        | Ir.IJoin (d, _, _, _, _)
        | Ir.ICompose (d, _, _, _, _)
        | Ir.IReplace (d, _, _)
        | Ir.ICall (Some d, _, _) -> Hashtbl.replace defs d i
        | Ir.IStore _ | Ir.IStoreUnion _ | Ir.IStoreInter _ | Ir.IStoreDiff _
        | Ir.ICall (None, _, _)
        | Ir.IFree _ | Ir.IKill _ | Ir.IPrint _ -> ())
      instrs
  in
  let rec scan_cond (c : Ir.ccond) =
    match c with
    | Ir.Cbool _ -> ()
    | Ir.Cnot c -> scan_cond c
    | Ir.Cand (a, b) | Ir.Cor (a, b) ->
      scan_cond a;
      scan_cond b
    | Ir.Ceq (code, _, rhs) | Ir.Cne (code, _, rhs) -> (
      scan_list code;
      match rhs with
      | Ir.Rhs_reg (code2, _) -> scan_list code2
      | Ir.Rhs_empty | Ir.Rhs_full -> ())
  in
  let rec scan_stmt (s : Ir.cstmt) =
    match s with
    | Ir.CExec instrs -> scan_list instrs
    | Ir.CBlock ss -> List.iter scan_stmt ss
    | Ir.CIf (c, th, el) ->
      scan_cond c;
      List.iter scan_stmt th;
      List.iter scan_stmt el
    | Ir.CWhile (c, body) | Ir.CDoWhile (body, c) ->
      scan_cond c;
      List.iter scan_stmt body
    | Ir.CReturn (code, _) -> scan_list code
  in
  List.iter scan_stmt m.Ir.c_body;
  !out
