(** A generic monotone dataflow framework: explicit control-flow graphs
    plus a worklist fixpoint solver over a join-semilattice.

    This is the shared engine under the §4.2 liveness analysis
    ([Jedd_lang.Liveness]) and every jeddlint checker: clients build a
    {!Graph} whose nodes carry their own meaning (statements, condition
    evaluations, IR instructions, ...), give a lattice and a transfer
    function, and read back the per-node fixpoint facts. *)

module Graph : sig
  type t

  val create : unit -> t

  val add_node : t -> int
  (** Allocate a node and return its id (dense, starting at 0). *)

  val add_edge : t -> int -> int -> unit
  (** [add_edge g a b] adds a directed edge [a -> b]. *)

  val size : t -> int
  val succs : t -> int -> int list
  val preds : t -> int -> int list
end

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  (** Least element; the initial guess at every node. *)

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Solver (L : LATTICE) : sig
  type result = {
    before : int -> L.t;
        (** The fact flowing {e into} the node's transfer function: the
            join over predecessors (successors when running [Backward])
            of their output facts, joined with the node's [init]. *)
    after : int -> L.t;  (** The node's transfer output. *)
  }

  val run :
    Graph.t ->
    direction ->
    init:(int -> L.t) ->
    transfer:(int -> L.t -> L.t) ->
    result
  (** Iterate [transfer] to a fixpoint with a worklist.  [init] seeds
      each node's input fact (typically [L.bottom] everywhere except a
      distinguished entry node); [transfer n fact] must be monotone in
      [fact].  For a [Backward] problem, [before n] is the fact {e
      after} the node in execution order (e.g. live-out) and [after n]
      the fact before it (live-in) — the names follow dataflow order,
      not execution order. *)
end
