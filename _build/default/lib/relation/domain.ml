type t = { name : string; size : int; printer : int -> string; uid : int }

let counter = ref 0

let declare ~name ~size ?printer () =
  if size <= 0 then invalid_arg "Domain.declare: size must be positive";
  incr counter;
  let printer =
    match printer with
    | Some p -> p
    | None -> fun i -> Printf.sprintf "%s#%d" name i
  in
  { name; size; printer; uid = !counter }

let name d = d.name
let size d = d.size
let print_obj d i = d.printer i

let bits d =
  let rec go n acc = if n >= d.size then acc else go (n * 2) (acc + 1) in
  max 1 (go 1 0)

let equal a b = a.uid = b.uid
