(* Levelized BDD dumps (see levelized.mli).  The uid encoding mirrors
   Jedd_extmem.Ebdd: 24 high bits of level, 40 low bits of within-level
   index, terminals negative. *)

type t = { blocks : (int * int array * int array) array; root : int }

let shift = 40
let mask = (1 lsl shift) - 1
let t_false = -2
let t_true = -1
let pack l i = (l lsl shift) lor i
let lev u = u lsr shift
let loc u = u land mask
let is_term u = u < 0

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let node_count d =
  Array.fold_left (fun n (_, lo, _) -> n + Array.length lo) 0 d.blocks

let support d = Array.to_list (Array.map (fun (l, _, _) -> l) d.blocks)

let validate d =
  let nblocks = Array.length d.blocks in
  (* level index: level -> node count, plus the ordering checks *)
  let counts = Hashtbl.create 16 in
  Array.iteri
    (fun bi (l, lo, hi) ->
      if l < 0 then malformed "negative level %d" l;
      if bi > 0 then begin
        let prev, _, _ = d.blocks.(bi - 1) in
        if l <= prev then malformed "levels not strictly ascending (%d after %d)" l prev
      end;
      if Array.length lo <> Array.length hi then
        malformed "level %d: lo/hi arrays differ in length" l;
      if Array.length lo = 0 then malformed "level %d: empty block" l;
      Hashtbl.replace counts l (Array.length lo))
    d.blocks;
  let check_child l u =
    if is_term u then begin
      if u <> t_false && u <> t_true then malformed "bad terminal uid %d" u
    end
    else begin
      let cl = lev u and ci = loc u in
      if cl <= l then malformed "child at level %d not below parent level %d" cl l;
      match Hashtbl.find_opt counts cl with
      | None -> malformed "child references missing level %d" cl
      | Some n -> if ci >= n then malformed "child index %d out of range at level %d" ci cl
    end
  in
  Array.iter
    (fun (l, lo, hi) ->
      Array.iteri
        (fun i lo_u ->
          let hi_u = hi.(i) in
          if lo_u = hi_u then malformed "redundant node (lo = hi) at level %d" l;
          check_child l lo_u;
          check_child l hi_u)
        lo)
    d.blocks;
  if is_term d.root then begin
    if d.root <> t_false && d.root <> t_true then malformed "bad root uid %d" d.root;
    if nblocks <> 0 then malformed "terminal root over non-empty blocks"
  end
  else begin
    if nblocks = 0 then malformed "non-terminal root over empty dump";
    (match Hashtbl.find_opt counts (lev d.root) with
    | None -> malformed "root references missing level %d" (lev d.root)
    | Some n ->
      if loc d.root >= n then malformed "root index %d out of range" (loc d.root));
    (* the root must sit in the first block, or upper blocks would be
       unreachable in a single-rooted dump; we only require it exists *)
    ()
  end

let map_levels f d =
  let map_uid u = if is_term u then u else pack (f (lev u)) (loc u) in
  let prev = ref (-1) in
  let blocks =
    Array.map
      (fun (l, lo, hi) ->
        let l' = f l in
        if l' < 0 then malformed "map_levels: negative target level %d" l';
        if l' <= !prev then malformed "map_levels: renaming is not monotone";
        prev := l';
        (l', Array.map map_uid lo, Array.map map_uid hi))
      d.blocks
  in
  { blocks; root = map_uid d.root }

(* -- in-core conversions ------------------------------------------------ *)

let of_manager m root =
  if root = Manager.zero then { blocks = [||]; root = t_false }
  else if root = Manager.one then { blocks = [||]; root = t_true }
  else begin
    (* DFS, assigning each node a per-level index in first-visit order.
       Recursion depth is bounded by the number of levels. *)
    let uid_of : (Manager.node, int) Hashtbl.t = Hashtbl.create 1024 in
    let members : (int, (int ref * Manager.node list ref)) Hashtbl.t =
      Hashtbl.create 64
    in
    let rec visit n =
      if (not (Manager.is_terminal n)) && not (Hashtbl.mem uid_of n) then begin
        let l = Manager.level m n in
        let count, cell =
          match Hashtbl.find_opt members l with
          | Some c -> c
          | None ->
            let c = (ref 0, ref []) in
            Hashtbl.add members l c;
            c
        in
        Hashtbl.add uid_of n (pack l !count);
        incr count;
        cell := n :: !cell;
        visit (Manager.low m n);
        visit (Manager.high m n)
      end
    in
    visit root;
    let uid n =
      if n = Manager.zero then t_false
      else if n = Manager.one then t_true
      else Hashtbl.find uid_of n
    in
    let levels =
      Hashtbl.fold (fun l _ acc -> l :: acc) members [] |> List.sort compare
    in
    let blocks =
      List.map
        (fun l ->
          let nodes = Array.of_list (List.rev !(snd (Hashtbl.find members l))) in
          ( l,
            Array.map (fun n -> uid (Manager.low m n)) nodes,
            Array.map (fun n -> uid (Manager.high m n)) nodes ))
        levels
    in
    { blocks = Array.of_list blocks; root = uid root }
  end

let to_manager m d =
  validate d;
  if d.root = t_false then Manager.addref m Manager.zero
  else if d.root = t_true then Manager.addref m Manager.one
  else begin
    let nvars = Manager.num_vars m in
    Array.iter
      (fun (l, _, _) ->
        if l >= nvars then
          malformed "dump level %d outside manager order (%d vars)" l nvars)
      d.blocks;
    (* Bottom-up: deepest block first, so children always resolve.
       Every constructed node takes an external reference immediately —
       node allocation under a node budget may garbage-collect, and the
       refs are what keep the half-built dump alive through that. *)
    let handle : (int, Manager.node) Hashtbl.t = Hashtbl.create 1024 in
    let created = ref [] in
    let resolve u =
      if u = t_false then Manager.zero
      else if u = t_true then Manager.one
      else Hashtbl.find handle u
    in
    for bi = Array.length d.blocks - 1 downto 0 do
      let l, lo, hi = d.blocks.(bi) in
      Array.iteri
        (fun i lo_u ->
          let n = Manager.mk m l (resolve lo_u) (resolve hi.(i)) in
          ignore (Manager.addref m n);
          created := n :: !created;
          Hashtbl.replace handle (pack l i) n)
        lo
    done;
    let root = Manager.addref m (Hashtbl.find handle d.root) in
    List.iter (Manager.delref m) !created;
    root
  end
