(** Pretty-printer for jeddc's output: the Java code the paper's
    translator generates (Figure 1, ".java" box).

    Relations become [jedd.internal.RelationContainer] fields and locals
    (§4.2); every relational operation becomes a call into the runtime
    ([Jedd.v().join(...)], [Jedd.v().compose(...)], ...), with the
    physical-domain assignment spelled out and a [Jedd.v().replace(...)]
    inserted exactly where the assignment stage decided a replace is
    needed.  The output is documentation-grade Java (it is not compiled
    here — our interpreter executes the same operation sequence), and
    matches what the original jeddc emitted closely enough to read
    side-by-side with the paper. *)

val emit_program : Driver.compiled -> string
(** All classes of the compiled program. *)

val emit_method : Driver.compiled -> string -> string
(** One method by qualified name ("Cls.meth"). *)
