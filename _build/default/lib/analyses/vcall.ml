(* Virtual call resolution: the Figure 4 algorithm lifted to call sites.
   Given the possible receiver types at each call site (from points-to)
   and the declares-method relation, walk up the class hierarchy to find
   each call's target method. *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp

let source =
  "class VirtualCalls {\n\
  \  <type, signature, method> declaresMethod;\n\
  \  <subtype, supertype:T3> extendV;\n\
  \  <callsite:C1, signature:S1, tgttype:T2, method:M1> resolved = 0B;\n\
  \  public void resolve( <callsite, tgttype, signature> receiverTypes ) {\n\
  \    <callsite:C1, tgttype:T2, signature:S1> toResolve = receiverTypes;\n\
  \    do {\n\
  \      <callsite:C1, signature:S1, tgttype:T2, method:M1> found =\n\
  \        toResolve{tgttype, signature} >< declaresMethod{type, signature};\n\
  \      resolved |= found;\n\
  \      toResolve -= (method=>) found;\n\
  \      toResolve = (supertype=>tgttype) (toResolve{tgttype} <> extendV{subtype});\n\
  \    } while (toResolve != 0B);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) =
  Common.set_fact inst "VirtualCalls.declaresMethod"
    (List.map (fun (c, s, m) -> [ c; s; m ]) p.P.declares);
  Common.set_fact inst "VirtualCalls.extendV"
    (List.map (fun (sub, sup) -> [ sub; sup ]) p.P.extend)

(* receiver types: (callsite, type, signature) triples *)
let run inst receiver_types =
  let u = Interp.universe inst in
  let schema =
    Interp.schema_of_var inst "VirtualCalls.resolve.receiverTypes"
  in
  let r = Jedd_relation.Relation.of_tuples u schema receiver_types in
  ignore (Interp.call inst "VirtualCalls.resolve" [ Interp.VRel r ]);
  Jedd_relation.Relation.release r

(* (callsite, signature, declaring type, method) *)
let results inst = Common.get_tuples inst "VirtualCalls.resolved"

(* (callsite, method) projection for the call-graph stage *)
let call_edges inst =
  List.sort_uniq compare
    (List.map (function
       | [ cs; _sig; _t; m ] -> [ cs; m ]
       | _ -> assert false)
       (results inst))
