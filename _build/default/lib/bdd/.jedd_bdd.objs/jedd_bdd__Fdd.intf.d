lib/bdd/fdd.mli: Manager
