(** A live analysis session: the combined five-analysis universe kept
    mutable (a "shadow" of the frozen serving generation), re-solved
    incrementally as program edits arrive.

    The session compiles the combined program with domain headroom
    ({!Suite.combined_source} [~headroom:true]) so edits fit the
    existing bit widths, keeps the previous fixed points in the field
    relations, and on each edit diffs the regenerated input facts
    against the loaded ones to decide, per analysis, between skipping
    (inputs unchanged), a semi-naive warm resume (inputs grew), a
    within-universe reset (inputs shrank or resolution targets may have
    changed), or — when an id space outgrows the compiled domains — a
    full recompile into a fresh universe.  Whatever the path, the
    resulting relations are tuple-for-tuple those of a from-scratch
    solve of the edited program: every fixed point is the unique least
    one, and relations are canonical BDDs. *)

module P = Jedd_minijava.Program

type t

type mode =
  | Incremental  (** warm resumes / skips only *)
  | Partial  (** some downstream stage reset within the universe *)
  | Rebuild  (** all stages reset within the universe *)
  | Recompile  (** domain capacity outgrown: fresh universe *)

val mode_to_string : mode -> string

type stage_stats = {
  stage : string;
  action : string;  (** "skip" | "resume" | "reset" *)
  iterations : int;
  delta_tuples : int;
  stage_millis : float;
}

type update_stats = {
  edit : string;
  mode : mode;
  millis : float;
  stages : stage_stats list;
}

val create :
  ?node_capacity:int ->
  ?backend:Jedd_relation.Backend.kind ->
  P.t ->
  t
(** Compile (with headroom), load the facts, and run the cold solve. *)

val program : t -> P.t
val inst : t -> Jedd_lang.Interp.t
(** The live instance — mutable; do not freeze it. *)

val results : t -> Suite.results
val update : t -> Jedd_incr.Edit.t -> update_stats
(** Apply the edit and re-solve.  @raise Jedd_incr.Edit.Invalid_edit on
    an invalid edit (the session is left unchanged). *)
