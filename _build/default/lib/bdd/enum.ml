type man = Manager.t
type node = Manager.node

let iter_assignments m f ~levels k =
  let n = Array.length levels in
  let values = Array.make n false in
  let rec go i f =
    if f <> Manager.zero then
      if i = n then begin
        if not (Manager.is_terminal f) then
          invalid_arg
            "Enum.iter_assignments: BDD depends on a variable outside ~levels";
        k values
      end
      else begin
        let want = levels.(i) in
        let lf = Manager.level m f in
        if lf < want then
          invalid_arg
            "Enum.iter_assignments: BDD depends on a variable outside ~levels"
        else if lf > want then begin
          (* variable absent: both values satisfy *)
          values.(i) <- false;
          go (i + 1) f;
          values.(i) <- true;
          go (i + 1) f
        end
        else begin
          values.(i) <- false;
          go (i + 1) (Manager.low m f);
          values.(i) <- true;
          go (i + 1) (Manager.high m f)
        end
      end
  in
  go 0 f

exception Found

let first_assignment m f ~levels =
  let result = ref None in
  (try
     iter_assignments m f ~levels (fun values ->
         result := Some (Array.copy values);
         raise Found)
   with Found -> ());
  !result
