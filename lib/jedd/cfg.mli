(** Control-flow graphs over the typed AST and the lowered IR, built on
    the generic [Jedd_dataflow] engine.

    The AST graph drives the §4.2 liveness analysis and the
    source-level jeddlint checkers; the IR graph drives the static
    refcount-discipline verifier.  Short-circuit conditions become
    branching subgraphs, and the frees [Ir_interp] synthesises after a
    relational comparison appear as explicit [IFree] instruction
    nodes, so IR-level analyses see exactly the transitions the
    interpreter performs. *)

(** Hashtable keyed by statement occurrence (physical identity). *)
module Stmt_tbl : Hashtbl.S with type key = Tast.tstmt

(** {1 Typed-AST CFG} *)

type anode =
  | A_entry
  | A_exit
  | A_join  (** merge / no-op point *)
  | A_stmt of Tast.tstmt  (** an atomic statement occurrence *)
  | A_cond of Tast.tcond * Ast.pos  (** a full condition evaluation *)
  | A_branch of Tast.tcond * bool
      (** refinement point reached when the condition took this outcome *)

type ast_cfg = {
  agraph : Jedd_dataflow.Graph.t;
  anodes : anode array;
  aentry : int;
  aexit : int;
  astmt_node : int Stmt_tbl.t;  (** atomic statement -> its node *)
  aif_nodes : (int * int) Stmt_tbl.t;  (** TIf -> (cond node, join node) *)
}

val build_ast : ?dowhile_compat:bool -> Tast.tmeth -> ast_cfg
(** Build the CFG of a method body.  [dowhile_compat] (default false)
    adds an artificial entry->condition edge to each do-while loop,
    reproducing the historical liveness conservatism; [Liveness] sets
    it so kill sites stay exactly where [Lower] has always put them,
    while the lint checkers build without it for precise
    first-iteration facts. *)

(** {1 Lowered-IR CFG} *)

type inode =
  | I_entry
  | I_exit
  | I_join
  | I_instr of Ir.instr
  | I_cmp of Ir.reg * Ir.reg option
      (** a relational comparison reading its operand registers *)
  | I_ret of Ir.reg option  (** return consumes its register *)

type ir_cfg = {
  igraph : Jedd_dataflow.Graph.t;
  inodes : inode array;
  ientry : int;
  iexit : int;
}

val build_ir : Ir.cmethod -> ir_cfg
