(* Tests for the CDCL solver: hand-picked instances, random 3-SAT vs a
   brute-force reference, model validity, unsat-core soundness, pigeonhole,
   and DIMACS round-trips. *)

module Solver = Jedd_sat.Solver
module Dimacs = Jedd_sat.Dimacs

let fresh_solver_with clauses =
  let s = Solver.create () in
  let ids = List.map (Solver.add_clause s) clauses in
  (s, ids)

let brute_force_sat nvars clauses =
  let satisfies assignment clause =
    List.exists
      (fun lit ->
        let v = abs lit - 1 in
        if lit > 0 then assignment.(v) else not assignment.(v))
      clause
  in
  let rec try_all code =
    if code >= 1 lsl nvars then false
    else
      let assignment = Array.init nvars (fun i -> (code lsr i) land 1 = 1) in
      List.for_all (satisfies assignment) clauses || try_all (code + 1)
  in
  if clauses = [] then true else try_all 0

let model_satisfies s clauses =
  List.for_all
    (fun clause ->
      List.exists
        (fun lit ->
          let v = abs lit in
          if lit > 0 then Solver.value s v else not (Solver.value s v))
        clause)
    clauses

(* ------------------------------------------------------------------ *)

let test_trivial_sat () =
  let s, _ = fresh_solver_with [ [ 1 ]; [ -2 ]; [ 1; 2; 3 ] ] in
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x1 true" true (Solver.value s 1);
  Alcotest.(check bool) "x2 false" false (Solver.value s 2)

let test_trivial_unsat () =
  let s, _ = fresh_solver_with [ [ 1 ]; [ -1 ] ] in
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check (list int)) "core is both units" [ 0; 1 ] (Solver.unsat_core s)

let test_empty_clause () =
  let s, _ = fresh_solver_with [ [ 1; 2 ] ] in
  let _ = Solver.add_clause s [] in
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check (list int)) "core is empty clause" [ 1 ] (Solver.unsat_core s)

let test_implication_chain () =
  (* x1, x1->x2, x2->x3, ..., x9->x10, !x10 : unsat via a chain *)
  let n = 10 in
  let clauses =
    [ [ 1 ] ]
    @ List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ])
    @ [ [ -n ] ]
  in
  let s, _ = fresh_solver_with clauses in
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  let core = Solver.unsat_core s in
  (* the whole chain is needed *)
  Alcotest.(check int) "core covers the chain" (n + 1) (List.length core)

let test_tautology_ignored () =
  let s, _ = fresh_solver_with [ [ 1; -1 ]; [ 2 ] ] in
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x2 true" true (Solver.value s 2)

let test_duplicate_literals () =
  let s, _ = fresh_solver_with [ [ 1; 1; 1 ]; [ -1; 2; 2 ] ] in
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x1" true (Solver.value s 1);
  Alcotest.(check bool) "x2" true (Solver.value s 2)

let pigeonhole holes =
  (* PHP(holes+1, holes): unsat, classically hard for resolution at
     scale, easy at this size; exercises learning heavily. *)
  let pigeons = holes + 1 in
  let var p h = (p * holes) + h + 1 in
  let at_least =
    List.init pigeons (fun p -> List.init holes (fun h -> var p h))
  in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p1 < p2 then Some [ -var p1 h; -var p2 h ] else None)
              (List.init pigeons (fun i -> i)))
          (List.init pigeons (fun i -> i)))
      (List.init holes (fun i -> i))
  in
  at_least @ at_most

let test_pigeonhole () =
  let clauses = pigeonhole 5 in
  let s, _ = fresh_solver_with clauses in
  Alcotest.(check bool) "php(6,5) unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "produced conflicts" true (Solver.conflicts s > 0)

let test_graph_coloring_sat () =
  (* 3-colour a 5-cycle (possible). var (v,c) = v*3+c+1 *)
  let var v c = (v * 3) + c + 1 in
  let vertices = List.init 5 (fun i -> i) in
  let one_color = List.map (fun v -> List.map (fun c -> var v c) [ 0; 1; 2 ]) vertices in
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let no_same =
    List.concat_map
      (fun (a, b) -> List.map (fun c -> [ -var a c; -var b c ]) [ 0; 1; 2 ])
      edges
  in
  let s, _ = fresh_solver_with (one_color @ no_same) in
  Alcotest.(check bool) "5-cycle 3-colourable" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "model is a colouring" true
    (model_satisfies s (one_color @ no_same))

let test_odd_cycle_2coloring_unsat () =
  let var v c = (v * 2) + c + 1 in
  let vertices = List.init 5 (fun i -> i) in
  let one_color = List.map (fun v -> [ var v 0; var v 1 ]) vertices in
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let no_same =
    List.concat_map
      (fun (a, b) -> List.map (fun c -> [ -var a c; -var b c ]) [ 0; 1 ])
      edges
  in
  let clauses = one_color @ no_same in
  let s, _ = fresh_solver_with clauses in
  Alcotest.(check bool) "odd cycle not 2-colourable" true
    (Solver.solve s = Solver.Unsat);
  (* core soundness: the core alone must be unsat *)
  let core = Solver.unsat_core s in
  let all = Array.of_list clauses in
  let core_clauses = List.map (fun id -> all.(id)) core in
  let s2, _ = fresh_solver_with core_clauses in
  Alcotest.(check bool) "core itself unsat" true (Solver.solve s2 = Solver.Unsat)

let test_minimize_core () =
  (* unsat pair buried among irrelevant clauses *)
  let clauses = [ [ 3; 4 ]; [ 1 ]; [ 5; -6 ]; [ -1 ]; [ 2; 6 ] ] in
  let all = Array.of_list clauses in
  let s, _ = fresh_solver_with clauses in
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  let rebuild ids =
    let s = Solver.create () in
    let arr = Array.of_list ids in
    let local_ids = List.map (fun id -> Solver.add_clause s all.(id)) ids in
    ignore local_ids;
    (s, fun local -> arr.(local))
  in
  let core = Solver.minimize_core ~rebuild (Solver.unsat_core s) in
  Alcotest.(check (list int)) "minimal core is the two units" [ 1; 3 ] core

let test_dimacs_roundtrip () =
  let p = { Dimacs.nvars = 4; clauses = [ [ 1; -2 ]; [ 3; 4; -1 ]; [ -4 ] ] } in
  let text = Dimacs.to_string p in
  let p' = Dimacs.of_string text in
  Alcotest.(check int) "nvars" p.Dimacs.nvars p'.Dimacs.nvars;
  Alcotest.(check (list (list int))) "clauses" p.Dimacs.clauses p'.Dimacs.clauses

let test_dimacs_load () =
  let p = Dimacs.of_string "c comment\np cnf 2 2\n1 2 0\n-1 -2 0\n" in
  let s = Solver.create () in
  let ids = Dimacs.load_into s p in
  Alcotest.(check (list int)) "ids" [ 0; 1 ] ids;
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

(* ---------------- proof checking (reference [30]) ------------------ *)

module Checker = Jedd_sat.Checker

let test_proof_validates () =
  let clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ] in
  let s, _ = fresh_solver_with clauses in
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  let proof = Solver.proof s in
  Alcotest.(check bool) "proof ends with empty clause" true
    (List.exists (( = ) []) proof);
  Alcotest.(check bool) "RUP check passes" true
    (Checker.check_rup ~nvars:(Solver.num_vars s) clauses proof)

let test_proof_rejects_bogus () =
  let clauses = [ [ 1; 2 ]; [ -1; 2 ] ] in
  (* claiming [-2] is derivable would be wrong; claiming [] outright is
     wrong too *)
  Alcotest.(check bool) "bogus step rejected" false
    (Checker.check_rup ~nvars:2 clauses [ [ -2 ]; [] ]);
  Alcotest.(check bool) "bogus empty clause rejected" false
    (Checker.check_rup ~nvars:2 clauses [ [] ])

let test_proof_pigeonhole () =
  let clauses = pigeonhole 4 in
  let s, _ = fresh_solver_with clauses in
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "php proof validates" true
    (Checker.check_rup ~nvars:(Solver.num_vars s) clauses (Solver.proof s))

let test_check_core_direct () =
  Alcotest.(check bool) "unsat pair" true
    (Checker.check_core ~nvars:1 [ [ 1 ]; [ -1 ] ]);
  Alcotest.(check bool) "satisfiable set" false
    (Checker.check_core ~nvars:2 [ [ 1; 2 ]; [ -1 ] ]);
  Alcotest.(check bool) "odd cycle core" true
    (Checker.check_core ~nvars:10
       [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ]; [ -1; -3 ]; [ -1; -5 ]; [ -3; -5 ];
         [ -2; -4 ]; [ -2; -6 ]; [ -4; -6 ] ])

(* ---------------- randomized tests -------------------------------- *)

let random_3sat_instance rand nvars nclauses =
  List.init nclauses (fun _ ->
      List.init 3 (fun _ ->
          let v = 1 + rand nvars in
          if rand 2 = 0 then v else -v))

let prop_agrees_with_brute_force =
  QCheck.Test.make ~count:200 ~name:"CDCL agrees with brute force on random 3-SAT"
    QCheck.(pair (int_bound 1000000) (int_bound 30))
    (fun (seed, extra) ->
      let st = Random.State.make [| seed; extra |] in
      let rand n = Random.State.int st n in
      let nvars = 4 + rand 6 in
      let nclauses = 3 + rand (4 * nvars) in
      let clauses = random_3sat_instance rand nvars nclauses in
      let s, _ = fresh_solver_with clauses in
      let cdcl_sat = Solver.solve s = Solver.Sat in
      let brute = brute_force_sat nvars clauses in
      if cdcl_sat <> brute then false
      else if cdcl_sat then model_satisfies s clauses
      else begin
        (* unsat: check the core is itself unsat *)
        let all = Array.of_list clauses in
        let core_clauses =
          List.map (fun id -> all.(id)) (Solver.unsat_core s)
        in
        let s2, _ = fresh_solver_with core_clauses in
        Solver.solve s2 = Solver.Unsat
      end)

let prop_proofs_validate =
  QCheck.Test.make ~count:100
    ~name:"unsat proofs and cores validate independently"
    QCheck.(pair (int_bound 1000000) (int_bound 30))
    (fun (seed, extra) ->
      let st = Random.State.make [| seed; extra; 77 |] in
      let rand n = Random.State.int st n in
      let nvars = 4 + rand 4 in
      let nclauses = 3 * nvars in
      let clauses = random_3sat_instance rand nvars nclauses in
      let s, _ = fresh_solver_with clauses in
      match Solver.solve s with
      | Solver.Sat -> true
      | Solver.Unsat ->
        let proof_ok =
          Checker.check_rup ~nvars:(Solver.num_vars s) clauses
            (Solver.proof s)
        in
        let all = Array.of_list clauses in
        let core_clauses =
          List.map (fun id -> all.(id)) (Solver.unsat_core s)
        in
        proof_ok
        && Checker.check_core ~nvars:(Solver.num_vars s) core_clauses)

let qcheck_cases =
  List.map (QCheck_alcotest.to_alcotest ~verbose:false)
    [ prop_agrees_with_brute_force; prop_proofs_validate ]

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat + core" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "implication chain core" `Quick test_implication_chain;
    Alcotest.test_case "tautology ignored" `Quick test_tautology_ignored;
    Alcotest.test_case "duplicate literals" `Quick test_duplicate_literals;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
    Alcotest.test_case "graph colouring sat" `Quick test_graph_coloring_sat;
    Alcotest.test_case "odd cycle unsat + core sound" `Quick
      test_odd_cycle_2coloring_unsat;
    Alcotest.test_case "minimize core" `Quick test_minimize_core;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs load" `Quick test_dimacs_load;
    Alcotest.test_case "proof validates" `Quick test_proof_validates;
    Alcotest.test_case "proof rejects bogus" `Quick test_proof_rejects_bogus;
    Alcotest.test_case "pigeonhole proof" `Quick test_proof_pigeonhole;
    Alcotest.test_case "check_core direct" `Quick test_check_core_direct;
  ]
  @ qcheck_cases
