lib/analyses/sideeffect.ml: Array Common Jedd_lang Jedd_minijava List
