(* Side-effect analysis: which (heap object, field) pairs each method may
   write, directly or through the methods it (transitively) calls — the
   analysis §5 quotes as 803 NCLOC of Java vs 124 lines of Jedd.

   The propagation along the caller-of relation is a monotone fixed
   point driven semi-naively through Incr.Fixpoint; [prepSE] caches the
   caller-of join in a field so delta steps do not recompute it, and
   [seedSE] re-derives the direct effects (which pick up pt/store
   changes on a warm resume).  [runNaive] keeps the paper's original
   loop for the differential suite. *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp
module R = Jedd_relation.Relation
module Fixpoint = Jedd_incr.Fixpoint

let source =
  "class SideEffects {\n\
  \  <src:V1, base:V2, field:F1> storeS;\n\
  \  <var:V2, srcmethod:M2> varMethod;\n\
  \  <var:V2, baseheap:H2> ptB;\n\
  \  <callsite:C1, method:M1> callEdgeS;\n\
  \  <callsite:C1, srcmethod:M2> siteInS;\n\
  \  <srcmethod:M2, baseheap:H2, field:F1> modSet = 0B;\n\
  \  <method:M1, srcmethod:M2> callerOfS = 0B;\n\
  \  // caller-of relation: callee method -> calling method\n\
  \  public void prepSE() {\n\
  \    callerOfS = callEdgeS{callsite} <> siteInS{callsite};\n\
  \  }\n\
  \  // direct effects: store base.f = src, base may point to baseheap,\n\
  \  // in the method owning base\n\
  \  public <srcmethod:M2, baseheap:H2, field:F1> seedSE() {\n\
  \    <base:V2, field:F1> st = (src=>) storeS;\n\
  \    <base:V2, field:F1, baseheap:H2> st2 = st{base} >< ptB{var};\n\
  \    return st2{base} <> varMethod{var};\n\
  \  }\n\
  \  // propagate newly discovered callee effects to callers\n\
  \  public <srcmethod:M2, baseheap:H2, field:F1> stepSE(\n\
  \      <srcmethod:M2, baseheap:H2, field:F1> delta ) {\n\
  \    <method:M1, baseheap:H2, field:F1> calleeFx = (srcmethod=>method) delta;\n\
  \    return callerOfS{method} <> calleeFx{method};\n\
  \  }\n\
  \  public void runNaive() {\n\
  \    <base:V2, field:F1> st = (src=>) storeS;\n\
  \    <base:V2, field:F1, baseheap:H2> st2 = st{base} >< ptB{var};\n\
  \    modSet = st2{base} <> varMethod{var};\n\
  \    <method:M1, srcmethod:M2> callerOf = callEdgeS{callsite} <> siteInS{callsite};\n\
  \    <srcmethod:M2, baseheap:H2, field:F1> delta = modSet;\n\
  \    do {\n\
  \      <method:M1, baseheap:H2, field:F1> calleeFx = (srcmethod=>method) delta;\n\
  \      delta = callerOf{method} <> calleeFx{method};\n\
  \      delta -= modSet;\n\
  \      modSet |= delta;\n\
  \    } while (delta != 0B);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) ~pt ~call_edges =
  Common.set_fact inst "SideEffects.storeS"
    (List.map (fun (s, b, f) -> [ s; b; f ]) p.P.stores);
  Common.set_fact inst "SideEffects.varMethod"
    (Array.to_list (Array.mapi (fun v m -> [ v; m ]) p.P.var_method));
  Common.set_fact inst "SideEffects.ptB" pt;
  Common.set_fact inst "SideEffects.callEdgeS" call_edges;
  Common.set_fact inst "SideEffects.siteInS"
    (List.map
       (fun (cs : P.call_site) -> [ cs.P.cs_id; cs.P.cs_in_method ])
       p.P.calls)

(* Semi-naive solve from the current modSet state: cold from 0B, a warm
   resume after the input relations have grown. *)
let solve ?on_iter inst =
  ignore (Interp.call inst "SideEffects.prepSE" []);
  let acc0 = Interp.get_field inst "SideEffects.modSet" in
  let seed = Common.call_rel inst "SideEffects.seedSE" [] in
  let step ~deltas ~accs =
    Interp.set_field inst "SideEffects.modSet" accs.(0);
    [| Common.call_rel inst "SideEffects.stepSE" [ Common.arg deltas.(0) ] |]
  in
  let final, stats =
    Fixpoint.solve ?on_iter ~accs:[| acc0 |] ~seed:[| seed |] ~step ()
  in
  R.release seed;
  Interp.set_field inst "SideEffects.modSet" final.(0);
  R.release final.(0);
  stats

let run inst = ignore (solve inst)
let run_naive inst = ignore (Interp.call inst "SideEffects.runNaive" [])

(* (method, heap, field) triples *)
let results inst = Common.get_tuples inst "SideEffects.modSet"
