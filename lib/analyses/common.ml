(* Shared declarations for the five whole-program analyses (§5).

   Each analysis is a Jedd class; they share one set of domains,
   attributes and physical domains, so they can be compiled separately
   (rows 1–5 of Table 1) or concatenated into one program ("All 5
   combined").  Domain sizes depend on the analysed program, so the
   preamble is generated per program. *)

module P = Jedd_minijava.Program

(* Declaration order fixes the relative bit order of the physical
   domains; this default keeps the pairs the analyses copy between
   (V1/V2, H1/H2, the type domains) adjacent.  The reorder benchmark
   permutes it to manufacture a deliberately bad initial order. *)
let default_physdom_order =
  [ "T1"; "T2"; "T3"; "S1"; "M1"; "M2"; "V1"; "V2"; "H1"; "H2"; "F1"; "C1" ]

(* Call-site ids of removed sites stay allocated (Incr.Edit tombstone
   semantics), so the CallSite domain is sized by the largest id, not
   the list length.  For freshly generated programs the two agree. *)
let n_callsites (p : P.t) =
  List.fold_left (fun a (c : P.call_site) -> max a (c.P.cs_id + 1)) 0 p.P.calls

(* [~headroom:true] pads every domain so a live universe can absorb a
   run of edits (new classes/vars/heap sites/call sites) without
   outgrowing its compiled bit widths.  The analyses never complement a
   relation (no 1B), so spare domain values cannot appear in any result:
   padded and unpadded universes compute identical tuple sets. *)
let pad_for_headroom n = n + max 8 (n / 4)

let preamble ?(physdom_order = default_physdom_order) ?(headroom = false)
    (p : P.t) =
  let d name size =
    let size = if headroom then pad_for_headroom size else size in
    Printf.sprintf "domain %s %d;\n" name (max 2 size)
  in
  let a name dom = Printf.sprintf "attribute %s : %s;\n" name dom in
  String.concat ""
    ([
      d "Type" p.P.n_classes;
      d "Sig" p.P.n_sigs;
      d "Method" p.P.n_methods;
      d "Var" p.P.n_vars;
      d "Heap" p.P.n_heap;
      d "Field" p.P.n_fields;
      d "CallSite" (n_callsites p);
      (* type-domain attributes *)
      a "type" "Type";
      a "tgttype" "Type";
      a "subtype" "Type";
      a "supertype" "Type";
      (* others *)
      a "signature" "Sig";
      a "method" "Method";
      a "srcmethod" "Method";
      a "var" "Var";
      a "src" "Var";
      a "dst" "Var";
      a "base" "Var";
      a "heap" "Heap";
      a "baseheap" "Heap";
      a "field" "Field";
      a "callsite" "CallSite";
    ]
    @ List.map (fun n -> Printf.sprintf "physdom %s;\n" n) physdom_order)

(* Build a relation for an instantiated program from fact tuples, at the
   layout of the given field, and install it. *)
let set_fact inst field tuples =
  let u = Jedd_lang.Interp.universe inst in
  let schema = Jedd_lang.Interp.schema_of_var inst field in
  let r = Jedd_relation.Relation.of_tuples u schema tuples in
  Jedd_lang.Interp.set_field inst field r;
  Jedd_relation.Relation.release r

let get_tuples inst field =
  Jedd_relation.Relation.tuples (Jedd_lang.Interp.get_field inst field)

(* -- helpers for the semi-naive drivers -------------------------------- *)

(* Call a relation-returning Jedd method; the result is owned. *)
let call_rel inst meth args =
  match Jedd_lang.Interp.call inst meth args with
  | Some r -> r
  | None -> failwith (meth ^ ": expected a relation result")

(* An owned argument for Interp.call (which consumes its relation
   arguments when the callee's frame dies). *)
let arg r = Jedd_lang.Interp.VRel (Jedd_relation.Relation.dup r)

let empty_rel inst field =
  Jedd_relation.Relation.empty
    (Jedd_lang.Interp.universe inst)
    (Jedd_lang.Interp.schema_of_var inst field)
