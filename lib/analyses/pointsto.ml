(* Subset-based, field-sensitive points-to analysis in Jedd — the
   BDD algorithm of Berndl et al. [5], which §5 reports both hand-coded
   (our [Pointsto_baseline]) and in Jedd (this module, Table 2). *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp

let source =
  "class PointsTo {\n\
  \  <var:V1, heap:H1> alloc;\n\
  \  <src:V1, dst:V2> assign;\n\
  \  <base:V1, field:F1, dst:V2> load;\n\
  \  <src:V1, base:V2, field:F1> store;\n\
  \  <var:V1, heap:H1> pt = 0B;\n\
  \  <baseheap:H2, field:F1, heap:H1> fieldpt = 0B;\n\
  \  public void run() {\n\
  \    pt = alloc;\n\
  \    <var:V1, heap:H1> old;\n\
  \    do {\n\
  \      old = pt;\n\
  \      // copy rule: dst points to whatever src points to\n\
  \      pt |= (dst=>var) (assign{src} <> pt{var});\n\
  \      // store rule: o.f = v\n\
  \      <base:V2, field:F1, heap:H1> st1 = store{src} <> pt{var};\n\
  \      <var:V2, baseheap:H2> ptb = (heap=>baseheap) pt;\n\
  \      fieldpt |= st1{base} <> ptb{var};\n\
  \      // load rule: v = o.f (profiler-tuned: keep var in V1 here,\n\
  \      // saving a replace per iteration, as in the hand-coded version)\n\
  \      <var:V1, baseheap:H2> ptb2 = (heap=>baseheap) pt;\n\
  \      <field:F1, dst:V2, baseheap:H2> ld1 = load{base} <> ptb2{var};\n\
  \      pt |= (dst=>var) (ld1{baseheap, field} <> fieldpt{baseheap, field});\n\
  \    } while (pt != old);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) =
  Common.set_fact inst "PointsTo.alloc"
    (List.map (fun (v, h) -> [ v; h ]) p.P.allocs);
  Common.set_fact inst "PointsTo.assign"
    (List.map (fun (s, d) -> [ s; d ]) p.P.assigns);
  Common.set_fact inst "PointsTo.load"
    (List.map (fun (b, f, d) -> [ b; f; d ]) p.P.loads);
  Common.set_fact inst "PointsTo.store"
    (List.map (fun (s, b, f) -> [ s; b; f ]) p.P.stores)

(* [~reorder:true] turns the order optimizer on for this solve: one
   explicit sifting pass over the loaded facts (which repairs a bad
   declaration order before the fixpoint amplifies it), plus the
   safe-point auto trigger for growth during the run. *)
let run ?(reorder = false) inst =
  let u = Interp.universe inst in
  if reorder then begin
    Jedd_relation.Universe.reorder ~trigger:"pre-run" u;
    Jedd_relation.Universe.set_auto_reorder u (Some (1 lsl 16))
  end;
  ignore (Interp.call inst "PointsTo.run" []);
  if reorder then Jedd_relation.Universe.set_auto_reorder u None
let results inst = Common.get_tuples inst "PointsTo.pt"
let field_results inst = Common.get_tuples inst "PointsTo.fieldpt"
