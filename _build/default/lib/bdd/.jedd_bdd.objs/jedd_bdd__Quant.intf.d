lib/bdd/quant.mli: Manager
